//! Membership view and uniform peer sampling.
//!
//! Within an organization every peer knows every other peer (Fabric builds
//! this view with its discovery/alive gossip; here the view is seeded with
//! the full roster and kept fresh by heartbeats). Sampling excludes the
//! local peer and, optionally, peers believed dead.

use desim::{Duration, Time};
use rand::rngs::StdRng;
use rand::RngExt;

use fabric_types::ids::PeerId;

/// The local peer's view of its organization.
///
/// Lookups by peer id are O(1) through a dense id→position index:
/// `mark_alive` runs twice per received gossip message, so the seed's
/// linear roster scan was an O(n) tax on every single delivery at
/// 100-peer scale. The index is pure bookkeeping — iteration order,
/// sampling order and every observable result are unchanged.
#[derive(Debug, Clone)]
pub struct Membership {
    self_id: PeerId,
    peers: Vec<PeerId>,
    /// Last time each roster entry was heard from (index-aligned with
    /// `peers`); `None` until first contact, treated as alive at startup.
    last_heard: Vec<Option<Time>>,
    /// Dense map `peer.0 → position + 1` in `peers` (0 = absent).
    index: Vec<u32>,
    alive_timeout: Duration,
}

impl Membership {
    /// Builds the view for `self_id` over the full `roster` (which may or
    /// may not include `self_id`; it is never sampled either way).
    pub fn new(self_id: PeerId, roster: Vec<PeerId>, alive_timeout: Duration) -> Self {
        let peers: Vec<PeerId> = roster.into_iter().filter(|p| *p != self_id).collect();
        let last_heard = vec![None; peers.len()];
        let mut m = Membership {
            self_id,
            peers,
            last_heard,
            index: Vec::new(),
            alive_timeout,
        };
        m.reindex(0);
        m
    }

    /// Rebuilds the id→position index for entries at `from` and beyond.
    fn reindex(&mut self, from: usize) {
        for i in from..self.peers.len() {
            let id = self.peers[i].0 as usize;
            if self.index.len() <= id {
                self.index.resize(id + 1, 0);
            }
            self.index[id] = (i + 1) as u32;
        }
    }

    /// Position of `peer` in `peers`, if present.
    fn pos(&self, peer: PeerId) -> Option<usize> {
        match self.index.get(peer.0 as usize) {
            Some(&v) if v > 0 => Some((v - 1) as usize),
            _ => None,
        }
    }

    /// The local peer id.
    pub fn self_id(&self) -> PeerId {
        self.self_id
    }

    /// All other peers in the organization.
    pub fn peers(&self) -> &[PeerId] {
        &self.peers
    }

    /// Number of other peers.
    pub fn len(&self) -> usize {
        self.peers.len()
    }

    /// `true` when the peer is alone in its organization.
    pub fn is_empty(&self) -> bool {
        self.peers.is_empty()
    }

    /// Records that `peer` was heard from at `now`.
    pub fn mark_alive(&mut self, peer: PeerId, now: Time) {
        if let Some(idx) = self.pos(peer) {
            self.last_heard[idx] = Some(now);
        }
    }

    /// Whether `peer` is believed alive at `now`: heard from within the
    /// timeout. Peers never heard from get a startup grace of one timeout
    /// from time zero, after which silence means death.
    pub fn believes_alive(&self, peer: PeerId, now: Time) -> bool {
        match self.pos(peer) {
            Some(idx) => match self.last_heard[idx] {
                None => now.since(Time::ZERO) <= self.alive_timeout,
                Some(t) => now.since(t) <= self.alive_timeout,
            },
            None => false,
        }
    }

    /// Peers believed alive at `now`, in id order.
    pub fn alive_peers(&self, now: Time) -> Vec<PeerId> {
        self.peers
            .iter()
            .copied()
            .filter(|p| self.believes_alive(*p, now))
            .collect()
    }

    /// Adds `peer` to the view at runtime (a channel join observed through
    /// discovery). The join announcement counts as first contact, so the
    /// newcomer is immediately sampleable and believed alive from `now`.
    /// Adding `self_id` or an already-known peer is a no-op.
    pub fn add_peer(&mut self, peer: PeerId, now: Time) {
        if peer == self.self_id {
            return;
        }
        match self.pos(peer) {
            Some(idx) => self.last_heard[idx] = Some(now),
            None => {
                self.peers.push(peer);
                self.last_heard.push(Some(now));
                self.reindex(self.peers.len() - 1);
            }
        }
    }

    /// Removes `peer` from the view at runtime (a channel leave). Returns
    /// whether the peer was present. A removed peer is never sampled again
    /// and is not believed alive.
    pub fn remove_peer(&mut self, peer: PeerId) -> bool {
        match self.pos(peer) {
            Some(idx) => {
                self.peers.remove(idx);
                self.last_heard.remove(idx);
                self.index[peer.0 as usize] = 0;
                self.reindex(idx);
                true
            }
            None => false,
        }
    }

    /// Carries learned liveness over from `prev` for peers present in both
    /// views, keeping the freshest timestamp. Used when a deployment widens
    /// a channel view: rebuilding the view must never make a known-alive
    /// peer look silent.
    pub fn adopt_liveness(&mut self, prev: &Membership) {
        for (idx, p) in self.peers.iter().enumerate() {
            if let Some(prev_idx) = prev.pos(*p) {
                if let Some(t) = prev.last_heard[prev_idx] {
                    self.last_heard[idx] = Some(match self.last_heard[idx] {
                        Some(cur) => cur.max(t),
                        None => t,
                    });
                }
            }
        }
    }

    /// Draws up to `k` distinct peers uniformly at random, excluding self.
    ///
    /// Partial Fisher–Yates over a scratch copy: O(k) swaps, exact
    /// uniformity, deterministic under the simulation RNG.
    pub fn sample(&self, rng: &mut StdRng, k: usize) -> Vec<PeerId> {
        self.sample_filtered(rng, k, |_| true)
    }

    /// Like [`Membership::sample`] but only over peers passing `keep`.
    pub fn sample_filtered(
        &self,
        rng: &mut StdRng,
        k: usize,
        keep: impl Fn(PeerId) -> bool,
    ) -> Vec<PeerId> {
        let mut pool: Vec<PeerId> = self.peers.iter().copied().filter(|p| keep(*p)).collect();
        let take = k.min(pool.len());
        for i in 0..take {
            let j = rng.random_range(i..pool.len());
            pool.swap(i, j);
        }
        pool.truncate(take);
        pool
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use std::collections::HashMap;

    fn membership(n: u32) -> Membership {
        Membership::new(
            PeerId(0),
            (0..n).map(PeerId).collect(),
            Duration::from_secs(25),
        )
    }

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn roster_excludes_self() {
        let m = membership(5);
        assert_eq!(m.len(), 4);
        assert!(!m.peers().contains(&PeerId(0)));
    }

    #[test]
    fn sample_never_returns_self_or_duplicates() {
        let m = membership(10);
        let mut r = rng(3);
        for _ in 0..100 {
            let s = m.sample(&mut r, 4);
            assert_eq!(s.len(), 4);
            assert!(!s.contains(&PeerId(0)));
            let mut dedup = s.clone();
            dedup.sort_unstable();
            dedup.dedup();
            assert_eq!(dedup.len(), 4);
        }
    }

    #[test]
    fn sample_caps_at_population() {
        let m = membership(4);
        let s = m.sample(&mut rng(1), 10);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn sample_is_roughly_uniform() {
        let m = membership(11); // 10 candidates
        let mut r = rng(42);
        let mut counts: HashMap<PeerId, u32> = HashMap::new();
        for _ in 0..10_000 {
            for p in m.sample(&mut r, 3) {
                *counts.entry(p).or_default() += 1;
            }
        }
        // Each of 10 peers should appear ~3000 times.
        for p in m.peers() {
            let c = counts[p];
            assert!((2600..=3400).contains(&c), "peer {p} drawn {c} times");
        }
    }

    #[test]
    fn alive_tracking_times_out() {
        let mut m = membership(3);
        let t0 = Time::ZERO;
        // Startup grace: everyone counts as alive.
        assert!(m.believes_alive(PeerId(1), t0));
        m.mark_alive(PeerId(1), Time::from_secs(10));
        assert!(m.believes_alive(PeerId(1), Time::from_secs(30)));
        assert!(!m.believes_alive(PeerId(1), Time::from_secs(40)));
        assert!(!m.believes_alive(PeerId(99), t0), "strangers are not alive");
    }

    #[test]
    fn alive_peers_lists_survivors() {
        let mut m = membership(4);
        let now = Time::from_secs(100);
        m.mark_alive(PeerId(1), Time::from_secs(99));
        m.mark_alive(PeerId(2), Time::from_secs(10)); // stale
                                                      // PeerId(3) was never heard from and the startup grace has lapsed.
        assert_eq!(m.alive_peers(now), vec![PeerId(1)]);
    }

    #[test]
    fn startup_grace_expires_for_silent_peers() {
        let m = membership(3);
        assert!(m.believes_alive(PeerId(1), Time::from_secs(10)));
        assert!(!m.believes_alive(PeerId(1), Time::from_secs(30)));
    }

    #[test]
    fn adopt_liveness_keeps_the_freshest_timestamp() {
        let mut old = membership(4);
        old.mark_alive(PeerId(1), Time::from_secs(50));
        old.mark_alive(PeerId(2), Time::from_secs(60));
        let mut widened = Membership::new(
            PeerId(0),
            (0..6).map(PeerId).collect(),
            Duration::from_secs(25),
        );
        widened.mark_alive(PeerId(2), Time::from_secs(70)); // already fresher
        widened.adopt_liveness(&old);
        let now = Time::from_secs(70);
        assert!(widened.believes_alive(PeerId(1), now), "carried over");
        assert!(widened.believes_alive(PeerId(2), now));
        // Peer 4 exists only in the widened view: startup-grace rules apply.
        assert!(!widened.believes_alive(PeerId(4), Time::from_secs(70)));
    }

    #[test]
    fn add_peer_is_sampleable_and_alive_from_now() {
        let mut m = membership(3);
        let now = Time::from_secs(100);
        m.add_peer(PeerId(9), now);
        assert!(m.peers().contains(&PeerId(9)));
        assert!(m.believes_alive(PeerId(9), now + Duration::from_secs(5)));
        // Re-adding refreshes liveness instead of duplicating the entry.
        m.add_peer(PeerId(9), now + Duration::from_secs(50));
        assert_eq!(m.peers().iter().filter(|p| **p == PeerId(9)).count(), 1);
        assert!(m.believes_alive(PeerId(9), Time::from_secs(160)));
        // Adding self is inert.
        m.add_peer(PeerId(0), now);
        assert!(!m.peers().contains(&PeerId(0)));
    }

    #[test]
    fn remove_peer_forgets_the_entry() {
        let mut m = membership(4);
        m.mark_alive(PeerId(2), Time::from_secs(10));
        assert!(m.remove_peer(PeerId(2)));
        assert!(!m.peers().contains(&PeerId(2)));
        assert!(!m.believes_alive(PeerId(2), Time::from_secs(11)));
        assert!(!m.remove_peer(PeerId(2)), "second removal is a no-op");
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn sample_filtered_respects_predicate() {
        let m = membership(10);
        let mut r = rng(7);
        let s = m.sample_filtered(&mut r, 5, |p| p.0 % 2 == 0);
        assert!(!s.is_empty());
        assert!(s.iter().all(|p| p.0 % 2 == 0));
    }
}
