//! A real-threads runtime for the gossip protocol.
//!
//! The same [`GossipPeer`] state machine that runs under the discrete-event
//! simulation runs here on OS threads connected by crossbeam channels, with
//! wall-clock timers. This demonstrates that the protocol layer is genuinely
//! transport-agnostic and gives examples/integration tests a way to exercise
//! the code under true concurrency.
//!
//! Peers are multiplexed over **shard threads**: each shard owns a
//! round-robin slice of the peer states, drains one shared inbox, and fires
//! its peers' timers using `recv_timeout` against the earliest deadline.
//! [`ThreadedNet::spawn`] uses one shard per peer (the historical
//! thread-per-peer shape); [`ThreadedNet::spawn_sharded`] pins the thread
//! count, so a thousand-peer deployment runs on a handful of OS threads
//! instead of a thousand — the same sharding idea the simulation's
//! cross-core channel runner uses, applied to the real-threads transport.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::thread::JoinHandle;
use std::time::Instant;

use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use desim::{Duration, Time};
use rand::rngs::StdRng;
use rand::SeedableRng;

use fabric_types::block::BlockRef;
use fabric_types::ids::{ChannelId, PeerId};

use crate::config::GossipConfig;
use crate::effects::Effects;
use crate::messages::{ChannelMsg, GossipMsg, GossipTimer};
use crate::peer::GossipPeer;

enum Envelope {
    Msg {
        to: PeerId,
        from: PeerId,
        envelope: ChannelMsg,
    },
    FromOrderer {
        to: PeerId,
        channel: ChannelId,
        block: BlockRef,
    },
    Shutdown,
}

#[derive(Debug)]
struct TimerEntry {
    at: Time,
    seq: u64,
    /// The shard-local peer the timer belongs to.
    owner: PeerId,
    channel: ChannelId,
    timer: GossipTimer,
}

impl PartialEq for TimerEntry {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for TimerEntry {}
impl PartialOrd for TimerEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for TimerEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.at
            .cmp(&other.at)
            .then_with(|| self.seq.cmp(&other.seq))
    }
}

struct ThreadFx<'a> {
    start: Instant,
    me: PeerId,
    senders: &'a [Sender<Envelope>],
    timers: &'a mut BinaryHeap<Reverse<TimerEntry>>,
    timer_seq: &'a mut u64,
    rng: &'a mut StdRng,
    delivered: &'a mut Vec<u64>,
}

impl ThreadFx<'_> {
    fn wall_now(start: Instant) -> Time {
        Time::from_nanos(start.elapsed().as_nanos() as u64)
    }
}

impl Effects for ThreadFx<'_> {
    fn now(&self) -> Time {
        Self::wall_now(self.start)
    }

    fn send(&mut self, channel: ChannelId, to: PeerId, msg: GossipMsg) {
        if let Some(tx) = self.senders.get(to.index()) {
            // A receiver that already shut down is indistinguishable from a
            // crashed peer; dropping the message models exactly that.
            let _ = tx.send(Envelope::Msg {
                to,
                from: self.me,
                envelope: ChannelMsg { channel, msg },
            });
        }
    }

    fn schedule(&mut self, after: Duration, channel: ChannelId, timer: GossipTimer) {
        let at = self.now() + after;
        *self.timer_seq += 1;
        self.timers.push(Reverse(TimerEntry {
            at,
            seq: *self.timer_seq,
            owner: self.me,
            channel,
            timer,
        }));
    }

    fn rng(&mut self) -> &mut StdRng {
        self.rng
    }

    fn deliver(&mut self, _channel: ChannelId, block: BlockRef) {
        self.delivered.push(block.number());
    }
}

/// Outcome of one peer thread after shutdown.
#[derive(Debug)]
pub struct PeerOutcome {
    /// The final peer state (stats, store, ...).
    pub peer: GossipPeer,
    /// Block numbers delivered in order to the application.
    pub delivered: Vec<u64>,
}

/// A running in-process gossip network, one thread per peer.
///
/// ```no_run
/// use fabric_gossip::config::GossipConfig;
/// use fabric_gossip::runtime::ThreadedNet;
/// use fabric_types::block::{Block, BlockRef};
/// use fabric_types::ids::PeerId;
///
/// let net = ThreadedNet::spawn(8, GossipConfig::enhanced_f4(), 42);
/// net.inject_block(BlockRef::new(Block::new(1, Block::genesis().hash(), vec![])));
/// std::thread::sleep(std::time::Duration::from_millis(200));
/// let outcomes = net.shutdown();
/// assert!(outcomes.iter().all(|o| o.delivered == vec![1]));
/// ```
#[derive(Debug)]
pub struct ThreadedNet {
    senders: Vec<Sender<Envelope>>,
    handles: Vec<JoinHandle<Vec<PeerOutcome>>>,
    leader: PeerId,
}

impl ThreadedNet {
    /// Spawns `n` peer threads sharing `cfg` (one shard per peer — the
    /// historical shape). Peer 0 is the static leader.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or the configuration is invalid.
    pub fn spawn(n: usize, cfg: GossipConfig, seed: u64) -> Self {
        Self::spawn_sharded(n, cfg, seed, n)
    }

    /// Spawns `n` peers multiplexed over `shards` threads. Peer `p` lives
    /// on shard `p % shards`, so the leader (peer 0) shares its thread
    /// with a 1/`shards` slice of the followers. Per-peer state, RNG
    /// streams and delivery logs are identical to the thread-per-peer
    /// shape; only the thread↔peer mapping changes.
    ///
    /// # Panics
    ///
    /// Panics if `n` or `shards` is zero, or the configuration is invalid.
    pub fn spawn_sharded(n: usize, cfg: GossipConfig, seed: u64, shards: usize) -> Self {
        assert!(n > 0, "a gossip network needs at least one peer");
        assert!(shards > 0, "need at least one shard thread");
        let shards = shards.min(n);
        let roster: Vec<PeerId> = (0..n as u32).map(PeerId).collect();
        let shard_channels: Vec<(Sender<Envelope>, Receiver<Envelope>)> =
            (0..shards).map(|_| unbounded()).collect();
        // Peer → its shard's inbox, so `Effects::send` routes by peer id
        // without knowing the shard layout.
        let senders: Vec<Sender<Envelope>> = (0..n)
            .map(|p| shard_channels[p % shards].0.clone())
            .collect();
        let start = Instant::now();

        let mut handles = Vec::with_capacity(shards);
        for (s, (_, rx)) in shard_channels.into_iter().enumerate() {
            let peers: Vec<(PeerId, GossipPeer, u64)> = (s..n)
                .step_by(shards)
                .map(|i| {
                    let id = PeerId(i as u32);
                    let peer = GossipPeer::new(id, roster.clone(), cfg.clone());
                    let peer_seed = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(i as u64);
                    (id, peer, peer_seed)
                })
                .collect();
            let senders = senders.clone();
            handles.push(std::thread::spawn(move || {
                run_shard(peers, rx, senders, start)
            }));
        }
        ThreadedNet {
            senders,
            handles,
            leader: PeerId(0),
        }
    }

    /// The static leader's id.
    pub fn leader(&self) -> PeerId {
        self.leader
    }

    /// Number of peers.
    pub fn len(&self) -> usize {
        self.senders.len()
    }

    /// `true` when the network has no peers (never; `spawn` forbids it).
    pub fn is_empty(&self) -> bool {
        self.senders.is_empty()
    }

    /// Delivers `block` to the leader as the ordering service would (on
    /// the default channel).
    pub fn inject_block(&self, block: BlockRef) {
        self.inject_block_on(ChannelId::DEFAULT, block);
    }

    /// Delivers `block` to the leader on `channel`.
    pub fn inject_block_on(&self, channel: ChannelId, block: BlockRef) {
        let _ = self.senders[self.leader.index()].send(Envelope::FromOrderer {
            to: self.leader,
            channel,
            block,
        });
    }

    /// Stops every shard thread and returns the outcomes in peer order.
    pub fn shutdown(self) -> Vec<PeerOutcome> {
        for tx in &self.senders {
            let _ = tx.send(Envelope::Shutdown);
        }
        let mut outcomes: Vec<PeerOutcome> = self
            .handles
            .into_iter()
            .flat_map(|h| h.join().expect("shard thread panicked"))
            .collect();
        outcomes.sort_by_key(|o| o.peer.id());
        outcomes
    }
}

/// One peer's runtime state on its shard thread.
struct ShardPeer {
    id: PeerId,
    peer: GossipPeer,
    rng: StdRng,
    delivered: Vec<u64>,
}

/// Runs every peer of one shard: a single inbox, a single timer heap with
/// per-peer owners, and round-robin peer ownership (`id % shards`).
fn run_shard(
    seeded: Vec<(PeerId, GossipPeer, u64)>,
    rx: Receiver<Envelope>,
    senders: Vec<Sender<Envelope>>,
    start: Instant,
) -> Vec<PeerOutcome> {
    let mut peers: Vec<ShardPeer> = seeded
        .into_iter()
        .map(|(id, peer, seed)| ShardPeer {
            id,
            peer,
            rng: StdRng::seed_from_u64(seed),
            delivered: Vec::new(),
        })
        .collect();
    let slot_of = |peers: &[ShardPeer], id: PeerId| -> usize {
        peers
            .iter()
            .position(|p| p.id == id)
            .expect("envelope routed to the owning shard")
    };
    let mut timers: BinaryHeap<Reverse<TimerEntry>> = BinaryHeap::new();
    let mut timer_seq = 0u64;

    macro_rules! fx {
        ($sp:expr) => {
            ThreadFx {
                start,
                me: $sp.id,
                senders: &senders,
                timers: &mut timers,
                timer_seq: &mut timer_seq,
                rng: &mut $sp.rng,
                delivered: &mut $sp.delivered,
            }
        };
    }

    for sp in &mut peers {
        let mut fx = fx!(sp);
        sp.peer.init(&mut fx);
    }

    loop {
        // Fire every due timer (any owner) before blocking again.
        loop {
            let now = ThreadFx::wall_now(start);
            match timers.peek() {
                Some(Reverse(entry)) if entry.at <= now => {
                    let Reverse(entry) = timers.pop().expect("peeked");
                    let slot = slot_of(&peers, entry.owner);
                    let sp = &mut peers[slot];
                    let mut fx = fx!(sp);
                    sp.peer
                        .on_channel_timer(&mut fx, entry.channel, entry.timer);
                }
                _ => break,
            }
        }

        let wait = match timers.peek() {
            Some(Reverse(entry)) => {
                let now = ThreadFx::wall_now(start);
                std::time::Duration::from_nanos(entry.at.since(now.min(entry.at)).as_nanos())
            }
            None => std::time::Duration::from_millis(50),
        };

        match rx.recv_timeout(wait) {
            Ok(Envelope::Msg { to, from, envelope }) => {
                let slot = slot_of(&peers, to);
                let sp = &mut peers[slot];
                let mut fx = fx!(sp);
                sp.peer
                    .on_channel_message(&mut fx, envelope.channel, from, envelope.msg);
            }
            Ok(Envelope::FromOrderer { to, channel, block }) => {
                let slot = slot_of(&peers, to);
                let sp = &mut peers[slot];
                let mut fx = fx!(sp);
                sp.peer.on_block_from_orderer_on(&mut fx, channel, block);
            }
            Ok(Envelope::Shutdown) => break,
            Err(RecvTimeoutError::Timeout) => continue,
            Err(RecvTimeoutError::Disconnected) => break,
        }
    }

    peers
        .into_iter()
        .map(|sp| PeerOutcome {
            peer: sp.peer,
            delivered: sp.delivered,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabric_types::block::Block;

    fn wait_until(deadline_ms: u64, mut done: impl FnMut() -> bool) -> bool {
        let start = Instant::now();
        while start.elapsed() < std::time::Duration::from_millis(deadline_ms) {
            if done() {
                return true;
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        done()
    }

    #[test]
    fn threaded_net_disseminates_blocks_to_everyone() {
        let net = ThreadedNet::spawn(8, GossipConfig::enhanced_f4(), 7);
        let genesis = Block::genesis();
        let b1 = BlockRef::new(Block::new(1, genesis.hash(), vec![]));
        let b2 = BlockRef::new(Block::new(2, b1.hash(), vec![]));
        net.inject_block(b1);
        net.inject_block(b2);
        assert!(wait_until(2_000, || true));
        std::thread::sleep(std::time::Duration::from_millis(300));
        let outcomes = net.shutdown();
        assert_eq!(outcomes.len(), 8);
        for o in &outcomes {
            assert_eq!(
                o.delivered,
                vec![1, 2],
                "peer {} missed blocks",
                o.peer.id()
            );
        }
    }

    #[test]
    fn sharded_runtime_disseminates_on_few_threads() {
        // 12 peers over 3 shard threads: same protocol, same outcomes,
        // a quarter of the OS threads.
        let net = ThreadedNet::spawn_sharded(12, GossipConfig::enhanced_f4(), 9, 3);
        assert_eq!(net.len(), 12);
        let genesis = Block::genesis();
        let b1 = BlockRef::new(Block::new(1, genesis.hash(), vec![]));
        let b2 = BlockRef::new(Block::new(2, b1.hash(), vec![]));
        net.inject_block(b1);
        net.inject_block(b2);
        std::thread::sleep(std::time::Duration::from_millis(400));
        let outcomes = net.shutdown();
        assert_eq!(outcomes.len(), 12);
        for (i, o) in outcomes.iter().enumerate() {
            assert_eq!(o.peer.id(), PeerId(i as u32), "peer order after sort");
            assert_eq!(
                o.delivered,
                vec![1, 2],
                "peer {} missed blocks",
                o.peer.id()
            );
        }
    }

    #[test]
    fn discovery_protocol_runs_on_threads_and_still_disseminates() {
        // The protocol-discovery timers (DiscoveryRound / AntiEntropyRound)
        // replace the legacy AliveRound under the real-threads runtime too;
        // heartbeat traffic must coexist with block dissemination.
        let mut cfg = GossipConfig::enhanced_f4().with_discovery_protocol();
        cfg.discovery.heartbeat_interval = Duration::from_millis(50);
        cfg.discovery.anti_entropy_interval = Duration::from_millis(80);
        let net = ThreadedNet::spawn(6, cfg, 13);
        let b1 = BlockRef::new(Block::new(1, Block::genesis().hash(), vec![]));
        net.inject_block(b1);
        std::thread::sleep(std::time::Duration::from_millis(400));
        let outcomes = net.shutdown();
        for o in &outcomes {
            assert_eq!(
                o.delivered,
                vec![1],
                "peer {} missed the block",
                o.peer.id()
            );
            let stats = o.peer.stats();
            assert!(
                stats.bytes_of_kind("alive-msg") > 0,
                "peer {} sent no discovery heartbeats",
                o.peer.id()
            );
            assert_eq!(stats.bytes_of_kind("alive"), 0, "legacy alive replaced");
        }
    }

    #[test]
    fn original_protocol_also_runs_on_threads() {
        // With 8 peers and fout=3, push alone may miss someone; pull (4 s)
        // would be too slow for a unit test, so shrink it.
        let mut cfg = GossipConfig::original_fabric();
        cfg.pull.as_mut().unwrap().tpull = Duration::from_millis(100);
        cfg.pull.as_mut().unwrap().digest_wait = Duration::from_millis(30);
        let net = ThreadedNet::spawn(8, cfg, 11);
        let b1 = BlockRef::new(Block::new(1, Block::genesis().hash(), vec![]));
        net.inject_block(b1);
        std::thread::sleep(std::time::Duration::from_millis(600));
        let outcomes = net.shutdown();
        for o in &outcomes {
            assert_eq!(
                o.delivered,
                vec![1],
                "peer {} missed the block",
                o.peer.id()
            );
        }
    }
}
