//! A real-threads runtime for the gossip protocol.
//!
//! The same [`GossipPeer`] state machine that runs under the discrete-event
//! simulation runs here on OS threads connected by crossbeam channels, with
//! wall-clock timers. This demonstrates that the protocol layer is genuinely
//! transport-agnostic and gives examples/integration tests a way to exercise
//! the code under true concurrency.
//!
//! One thread per peer: it owns the peer state, drains its inbox, and fires
//! its own timers using `recv_timeout` against the earliest deadline.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::thread::JoinHandle;
use std::time::Instant;

use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use desim::{Duration, Time};
use rand::rngs::StdRng;
use rand::SeedableRng;

use fabric_types::block::BlockRef;
use fabric_types::ids::{ChannelId, PeerId};

use crate::config::GossipConfig;
use crate::effects::Effects;
use crate::messages::{ChannelMsg, GossipMsg, GossipTimer};
use crate::peer::GossipPeer;

enum Envelope {
    Msg { from: PeerId, envelope: ChannelMsg },
    FromOrderer(ChannelId, BlockRef),
    Shutdown,
}

#[derive(Debug)]
struct TimerEntry {
    at: Time,
    seq: u64,
    channel: ChannelId,
    timer: GossipTimer,
}

impl PartialEq for TimerEntry {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for TimerEntry {}
impl PartialOrd for TimerEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for TimerEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.at
            .cmp(&other.at)
            .then_with(|| self.seq.cmp(&other.seq))
    }
}

struct ThreadFx<'a> {
    start: Instant,
    me: PeerId,
    senders: &'a [Sender<Envelope>],
    timers: &'a mut BinaryHeap<Reverse<TimerEntry>>,
    timer_seq: &'a mut u64,
    rng: &'a mut StdRng,
    delivered: &'a mut Vec<u64>,
}

impl ThreadFx<'_> {
    fn wall_now(start: Instant) -> Time {
        Time::from_nanos(start.elapsed().as_nanos() as u64)
    }
}

impl Effects for ThreadFx<'_> {
    fn now(&self) -> Time {
        Self::wall_now(self.start)
    }

    fn send(&mut self, channel: ChannelId, to: PeerId, msg: GossipMsg) {
        if let Some(tx) = self.senders.get(to.index()) {
            // A receiver that already shut down is indistinguishable from a
            // crashed peer; dropping the message models exactly that.
            let _ = tx.send(Envelope::Msg {
                from: self.me,
                envelope: ChannelMsg { channel, msg },
            });
        }
    }

    fn schedule(&mut self, after: Duration, channel: ChannelId, timer: GossipTimer) {
        let at = self.now() + after;
        *self.timer_seq += 1;
        self.timers.push(Reverse(TimerEntry {
            at,
            seq: *self.timer_seq,
            channel,
            timer,
        }));
    }

    fn rng(&mut self) -> &mut StdRng {
        self.rng
    }

    fn deliver(&mut self, _channel: ChannelId, block: BlockRef) {
        self.delivered.push(block.number());
    }
}

/// Outcome of one peer thread after shutdown.
#[derive(Debug)]
pub struct PeerOutcome {
    /// The final peer state (stats, store, ...).
    pub peer: GossipPeer,
    /// Block numbers delivered in order to the application.
    pub delivered: Vec<u64>,
}

/// A running in-process gossip network, one thread per peer.
///
/// ```no_run
/// use fabric_gossip::config::GossipConfig;
/// use fabric_gossip::runtime::ThreadedNet;
/// use fabric_types::block::{Block, BlockRef};
/// use fabric_types::ids::PeerId;
///
/// let net = ThreadedNet::spawn(8, GossipConfig::enhanced_f4(), 42);
/// net.inject_block(BlockRef::new(Block::new(1, Block::genesis().hash(), vec![])));
/// std::thread::sleep(std::time::Duration::from_millis(200));
/// let outcomes = net.shutdown();
/// assert!(outcomes.iter().all(|o| o.delivered == vec![1]));
/// ```
#[derive(Debug)]
pub struct ThreadedNet {
    senders: Vec<Sender<Envelope>>,
    handles: Vec<JoinHandle<PeerOutcome>>,
    leader: PeerId,
}

impl ThreadedNet {
    /// Spawns `n` peer threads sharing `cfg`. Peer 0 is the static leader.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or the configuration is invalid.
    pub fn spawn(n: usize, cfg: GossipConfig, seed: u64) -> Self {
        assert!(n > 0, "a gossip network needs at least one peer");
        let roster: Vec<PeerId> = (0..n as u32).map(PeerId).collect();
        let channels: Vec<(Sender<Envelope>, Receiver<Envelope>)> =
            (0..n).map(|_| unbounded()).collect();
        let senders: Vec<Sender<Envelope>> = channels.iter().map(|(tx, _)| tx.clone()).collect();
        let start = Instant::now();

        let mut handles = Vec::with_capacity(n);
        for (i, (_, rx)) in channels.into_iter().enumerate() {
            let id = PeerId(i as u32);
            let mut peer = GossipPeer::new(id, roster.clone(), cfg.clone());
            let senders = senders.clone();
            let peer_seed = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(i as u64);
            handles.push(std::thread::spawn(move || {
                run_peer(&mut peer, id, rx, senders, start, peer_seed)
            }));
        }
        ThreadedNet {
            senders,
            handles,
            leader: PeerId(0),
        }
    }

    /// The static leader's id.
    pub fn leader(&self) -> PeerId {
        self.leader
    }

    /// Number of peers.
    pub fn len(&self) -> usize {
        self.senders.len()
    }

    /// `true` when the network has no peers (never; `spawn` forbids it).
    pub fn is_empty(&self) -> bool {
        self.senders.is_empty()
    }

    /// Delivers `block` to the leader as the ordering service would (on
    /// the default channel).
    pub fn inject_block(&self, block: BlockRef) {
        self.inject_block_on(ChannelId::DEFAULT, block);
    }

    /// Delivers `block` to the leader on `channel`.
    pub fn inject_block_on(&self, channel: ChannelId, block: BlockRef) {
        let _ = self.senders[self.leader.index()].send(Envelope::FromOrderer(channel, block));
    }

    /// Stops every peer thread and returns their outcomes in peer order.
    pub fn shutdown(self) -> Vec<PeerOutcome> {
        for tx in &self.senders {
            let _ = tx.send(Envelope::Shutdown);
        }
        self.handles
            .into_iter()
            .map(|h| h.join().expect("peer thread panicked"))
            .collect()
    }
}

fn run_peer(
    peer: &mut GossipPeer,
    id: PeerId,
    rx: Receiver<Envelope>,
    senders: Vec<Sender<Envelope>>,
    start: Instant,
    seed: u64,
) -> PeerOutcome {
    let mut timers: BinaryHeap<Reverse<TimerEntry>> = BinaryHeap::new();
    let mut timer_seq = 0u64;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut delivered: Vec<u64> = Vec::new();

    {
        let mut fx = ThreadFx {
            start,
            me: id,
            senders: &senders,
            timers: &mut timers,
            timer_seq: &mut timer_seq,
            rng: &mut rng,
            delivered: &mut delivered,
        };
        peer.init(&mut fx);
    }

    loop {
        // Fire every due timer before blocking again.
        loop {
            let now = ThreadFx::wall_now(start);
            match timers.peek() {
                Some(Reverse(entry)) if entry.at <= now => {
                    let Reverse(entry) = timers.pop().expect("peeked");
                    let mut fx = ThreadFx {
                        start,
                        me: id,
                        senders: &senders,
                        timers: &mut timers,
                        timer_seq: &mut timer_seq,
                        rng: &mut rng,
                        delivered: &mut delivered,
                    };
                    peer.on_channel_timer(&mut fx, entry.channel, entry.timer);
                }
                _ => break,
            }
        }

        let wait = match timers.peek() {
            Some(Reverse(entry)) => {
                let now = ThreadFx::wall_now(start);
                std::time::Duration::from_nanos(entry.at.since(now.min(entry.at)).as_nanos())
            }
            None => std::time::Duration::from_millis(50),
        };

        match rx.recv_timeout(wait) {
            Ok(Envelope::Msg { from, envelope }) => {
                let mut fx = ThreadFx {
                    start,
                    me: id,
                    senders: &senders,
                    timers: &mut timers,
                    timer_seq: &mut timer_seq,
                    rng: &mut rng,
                    delivered: &mut delivered,
                };
                peer.on_channel_message(&mut fx, envelope.channel, from, envelope.msg);
            }
            Ok(Envelope::FromOrderer(channel, block)) => {
                let mut fx = ThreadFx {
                    start,
                    me: id,
                    senders: &senders,
                    timers: &mut timers,
                    timer_seq: &mut timer_seq,
                    rng: &mut rng,
                    delivered: &mut delivered,
                };
                peer.on_block_from_orderer_on(&mut fx, channel, block);
            }
            Ok(Envelope::Shutdown) => break,
            Err(RecvTimeoutError::Timeout) => continue,
            Err(RecvTimeoutError::Disconnected) => break,
        }
    }

    PeerOutcome {
        peer: std::mem::replace(peer, GossipPeer::new(id, vec![id], minimal_cfg())),
        delivered,
    }
}

/// A throwaway configuration for the placeholder peer left behind when a
/// thread returns its state.
fn minimal_cfg() -> GossipConfig {
    GossipConfig::enhanced_f4()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabric_types::block::Block;

    fn wait_until(deadline_ms: u64, mut done: impl FnMut() -> bool) -> bool {
        let start = Instant::now();
        while start.elapsed() < std::time::Duration::from_millis(deadline_ms) {
            if done() {
                return true;
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        done()
    }

    #[test]
    fn threaded_net_disseminates_blocks_to_everyone() {
        let net = ThreadedNet::spawn(8, GossipConfig::enhanced_f4(), 7);
        let genesis = Block::genesis();
        let b1 = BlockRef::new(Block::new(1, genesis.hash(), vec![]));
        let b2 = BlockRef::new(Block::new(2, b1.hash(), vec![]));
        net.inject_block(b1);
        net.inject_block(b2);
        assert!(wait_until(2_000, || true));
        std::thread::sleep(std::time::Duration::from_millis(300));
        let outcomes = net.shutdown();
        assert_eq!(outcomes.len(), 8);
        for o in &outcomes {
            assert_eq!(
                o.delivered,
                vec![1, 2],
                "peer {} missed blocks",
                o.peer.id()
            );
        }
    }

    #[test]
    fn discovery_protocol_runs_on_threads_and_still_disseminates() {
        // The protocol-discovery timers (DiscoveryRound / AntiEntropyRound)
        // replace the legacy AliveRound under the real-threads runtime too;
        // heartbeat traffic must coexist with block dissemination.
        let mut cfg = GossipConfig::enhanced_f4().with_discovery_protocol();
        cfg.discovery.heartbeat_interval = Duration::from_millis(50);
        cfg.discovery.anti_entropy_interval = Duration::from_millis(80);
        let net = ThreadedNet::spawn(6, cfg, 13);
        let b1 = BlockRef::new(Block::new(1, Block::genesis().hash(), vec![]));
        net.inject_block(b1);
        std::thread::sleep(std::time::Duration::from_millis(400));
        let outcomes = net.shutdown();
        for o in &outcomes {
            assert_eq!(
                o.delivered,
                vec![1],
                "peer {} missed the block",
                o.peer.id()
            );
            let stats = o.peer.stats();
            assert!(
                stats.bytes_of_kind("alive-msg") > 0,
                "peer {} sent no discovery heartbeats",
                o.peer.id()
            );
            assert_eq!(stats.bytes_of_kind("alive"), 0, "legacy alive replaced");
        }
    }

    #[test]
    fn original_protocol_also_runs_on_threads() {
        // With 8 peers and fout=3, push alone may miss someone; pull (4 s)
        // would be too slow for a unit test, so shrink it.
        let mut cfg = GossipConfig::original_fabric();
        cfg.pull.as_mut().unwrap().tpull = Duration::from_millis(100);
        cfg.pull.as_mut().unwrap().digest_wait = Duration::from_millis(30);
        let net = ThreadedNet::spawn(8, cfg, 11);
        let b1 = BlockRef::new(Block::new(1, Block::genesis().hash(), vec![]));
        net.inject_block(b1);
        std::thread::sleep(std::time::Duration::from_millis(600));
        let outcomes = net.shutdown();
        for o in &outcomes {
            assert_eq!(
                o.delivered,
                vec![1],
                "peer {} missed the block",
                o.peer.id()
            );
        }
    }
}
