//! Chaincodes: deterministic functions from state to read/write sets.
//!
//! An endorser *simulates* a chaincode against its committed state and signs
//! the resulting read/write set. The two chaincodes used in the paper's
//! evaluation are implemented:
//!
//! * [`IncrementChaincode`] — the Table II conflict workload: reads one of
//!   100 integer counters and writes it incremented;
//! * [`PayloadChaincode`] — the Fig. 4–14 dissemination workload, modeled on
//!   the `fabric-samples` high-throughput example: each invocation writes a
//!   fresh delta key (no read conflicts) and pads the transaction to a
//!   target size, producing the paper's ~160 KB blocks.

use std::fmt;

use fabric_types::rwset::{RwSet, Value};

use crate::state::StateReader;

/// Failure modes of chaincode simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChaincodeError {
    /// The invocation arguments were malformed.
    BadArguments(String),
}

impl fmt::Display for ChaincodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChaincodeError::BadArguments(msg) => write!(f, "bad chaincode arguments: {msg}"),
        }
    }
}

impl std::error::Error for ChaincodeError {}

/// Invocation input: the argument list of a proposal.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ChaincodeInput {
    /// Positional string arguments, chaincode-specific.
    pub args: Vec<String>,
}

impl ChaincodeInput {
    /// Builds an input from anything yielding string-likes.
    pub fn new<I, S>(args: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        ChaincodeInput {
            args: args.into_iter().map(Into::into).collect(),
        }
    }
}

/// A deterministic smart contract.
///
/// Determinism matters: Fabric executes the same chaincode on multiple
/// mutually untrusted endorsers and compares the resulting read/write sets.
pub trait Chaincode {
    /// The chaincode's registered name.
    fn name(&self) -> &str;

    /// Simulates the invocation against `state`, producing the read/write
    /// set an endorser would sign.
    ///
    /// # Errors
    ///
    /// Returns [`ChaincodeError::BadArguments`] for malformed inputs.
    fn simulate(
        &self,
        input: &ChaincodeInput,
        state: &dyn StateReader,
    ) -> Result<RwSet, ChaincodeError>;
}

/// The Table II workload: increments one named integer counter.
///
/// `args[0]` is the counter key. The read set records the version (and
/// implied value) observed; two increments endorsed over the same version
/// produce a validation-time conflict, earliest writer wins.
#[derive(Debug, Clone, Default)]
pub struct IncrementChaincode;

impl Chaincode for IncrementChaincode {
    fn name(&self) -> &str {
        "increment"
    }

    fn simulate(
        &self,
        input: &ChaincodeInput,
        state: &dyn StateReader,
    ) -> Result<RwSet, ChaincodeError> {
        let key = input
            .args
            .first()
            .ok_or_else(|| ChaincodeError::BadArguments("missing counter key".into()))?;
        let key_typed = fabric_types::rwset::Key::new(key.clone());
        let (current, version) = match state.get(&key_typed) {
            Some((v, ver)) => {
                let n = v.as_u64().ok_or_else(|| {
                    ChaincodeError::BadArguments(format!("key {key} does not hold a counter"))
                })?;
                (n, Some(ver))
            }
            None => (0, None),
        };
        Ok(RwSet::builder()
            .read(key.clone(), version)
            .write_u64(key.clone(), current + 1)
            .build())
    }
}

/// The dissemination workload: writes a unique delta key with a padded
/// value, conflict-free by construction.
///
/// `args[0]` is the unique row name (the workload generator uses the
/// transaction id). The value is padded so the whole transaction reaches
/// `tx_size` bytes on the wire once framed — with 50 transactions per block
/// and `tx_size ≈ 3.2 KB` this matches the paper's ~160 KB blocks.
#[derive(Debug, Clone)]
pub struct PayloadChaincode {
    /// Target padded payload size per transaction, in bytes.
    pub payload_bytes: usize,
}

impl PayloadChaincode {
    /// Creates the chaincode with a per-transaction payload size.
    pub fn new(payload_bytes: usize) -> Self {
        PayloadChaincode { payload_bytes }
    }
}

impl Chaincode for PayloadChaincode {
    fn name(&self) -> &str {
        "high-throughput"
    }

    fn simulate(
        &self,
        input: &ChaincodeInput,
        _state: &dyn StateReader,
    ) -> Result<RwSet, ChaincodeError> {
        let row = input
            .args
            .first()
            .ok_or_else(|| ChaincodeError::BadArguments("missing delta row name".into()))?;
        // The value itself stays tiny; transaction padding carries the bulk
        // (see `Transaction::payload_padding`), so the state DB does not
        // balloon during long dissemination runs.
        Ok(RwSet::builder()
            .write(format!("delta:{row}"), Value::from_u64(1))
            .build())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::StateDb;
    use fabric_types::rwset::{Key, Version, WriteItem};

    #[test]
    fn increment_of_absent_key_starts_at_one() {
        let state = StateDb::new();
        let rwset = IncrementChaincode
            .simulate(&ChaincodeInput::new(["counter7"]), &state)
            .unwrap();
        assert_eq!(rwset.reads[0].version, None);
        assert_eq!(rwset.writes[0].value.as_u64(), Some(1));
    }

    #[test]
    fn increment_reads_version_and_bumps_value() {
        let mut state = StateDb::new();
        state.apply(
            Version::new(4, 2),
            &[WriteItem {
                key: Key::from("counter7"),
                value: Value::from_u64(41),
            }],
        );
        let rwset = IncrementChaincode
            .simulate(&ChaincodeInput::new(["counter7"]), &state)
            .unwrap();
        assert_eq!(rwset.reads[0].version, Some(Version::new(4, 2)));
        assert_eq!(rwset.writes[0].value.as_u64(), Some(42));
    }

    #[test]
    fn increment_rejects_missing_or_non_counter_args() {
        let mut state = StateDb::new();
        assert!(matches!(
            IncrementChaincode.simulate(&ChaincodeInput::default(), &state),
            Err(ChaincodeError::BadArguments(_))
        ));
        state.apply(
            Version::new(1, 0),
            &[WriteItem {
                key: Key::from("blob"),
                value: Value(vec![1, 2, 3]),
            }],
        );
        assert!(IncrementChaincode
            .simulate(&ChaincodeInput::new(["blob"]), &state)
            .is_err());
    }

    #[test]
    fn payload_writes_unique_delta_rows() {
        let state = StateDb::new();
        let cc = PayloadChaincode::new(3200);
        let a = cc.simulate(&ChaincodeInput::new(["tx1"]), &state).unwrap();
        let b = cc.simulate(&ChaincodeInput::new(["tx2"]), &state).unwrap();
        assert!(a.reads.is_empty());
        assert_ne!(a.writes[0].key, b.writes[0].key);
    }

    #[test]
    fn chaincode_names() {
        assert_eq!(IncrementChaincode.name(), "increment");
        assert_eq!(PayloadChaincode::new(1).name(), "high-throughput");
    }
}
