//! # fabric-ledger — the Fabric peer substrate
//!
//! Everything a peer does with a block once gossip delivers it: the
//! versioned state database ([`state::StateDb`]), endorsement-policy and
//! MVCC validation ([`validate`]), ledger commit ([`ledger::Ledger`]), and
//! the chaincodes endorsers simulate ([`chaincode`]).
//!
//! The split mirrors Fabric's execute-order-validate pipeline:
//!
//! 1. an endorser runs [`chaincode::Chaincode::simulate`] against its
//!    [`state::StateDb`] and signs the resulting read/write set;
//! 2. the ordering service (crate `fabric-orderer`) batches proposals into
//!    blocks;
//! 3. every peer validates the delivered block ([`validate::validate_block`])
//!    and commits it ([`ledger::Ledger::commit`]), applying only the writes
//!    of valid transactions — conflicting transactions stay in the chain,
//!    flagged invalid, exactly the waste the paper's faster gossip reduces.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod chaincode;
pub mod ledger;
pub mod state;
pub mod validate;

pub use chaincode::{
    Chaincode, ChaincodeError, ChaincodeInput, IncrementChaincode, PayloadChaincode,
};
pub use ledger::{CommitError, CommitSummary, Ledger, LedgerStats};
pub use state::{StateDb, StateReader};
pub use validate::{validate_block, BlockValidation, TxValidation};
