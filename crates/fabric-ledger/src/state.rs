//! The versioned key/value state database of a peer.
//!
//! Every committed write stamps its key with the [`Version`] of the writing
//! transaction (`(block number, tx index)`). Endorsers record these versions
//! in read sets; validators compare them against the committed state.

use std::collections::BTreeMap;

use fabric_types::crypto::Hash256;
use fabric_types::rwset::{Key, Value, Version, WriteItem};
use fabric_types::snapshot::{hash_state_entries, StateEntry};

/// Read access to versioned state, as seen by a simulating chaincode.
pub trait StateReader {
    /// The current value and version of `key`, or `None` if absent.
    fn get(&self, key: &Key) -> Option<(&Value, Version)>;

    /// The current version of `key`, or `None` if absent.
    fn get_version(&self, key: &Key) -> Option<Version> {
        self.get(key).map(|(_, v)| v)
    }
}

/// The materialized world state: latest value and version per key.
///
/// ```
/// use fabric_ledger::state::{StateDb, StateReader};
/// use fabric_types::rwset::{Key, Value, Version, WriteItem};
///
/// let mut db = StateDb::new();
/// db.apply(Version::new(1, 0), &[WriteItem { key: Key::from("a"), value: Value::from_u64(7) }]);
/// let (value, version) = db.get(&Key::from("a")).unwrap();
/// assert_eq!(value.as_u64(), Some(7));
/// assert_eq!(version, Version::new(1, 0));
/// ```
#[derive(Debug, Clone, Default)]
pub struct StateDb {
    entries: BTreeMap<Key, (Value, Version)>,
}

impl StateDb {
    /// An empty state database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Applies the writes of one committed transaction at `version`.
    pub fn apply(&mut self, version: Version, writes: &[WriteItem]) {
        for w in writes {
            self.entries
                .insert(w.key.clone(), (w.value.clone(), version));
        }
    }

    /// Number of keys present.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no key is present.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over `(key, value, version)` in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&Key, &Value, Version)> + '_ {
        self.entries.iter().map(|(k, (v, ver))| (k, v, *ver))
    }

    /// The deterministic digest of the whole state
    /// ([`hash_state_entries`] over the key-ordered entries) — the
    /// checkpoint fingerprint. Two databases that applied the same writes
    /// in the same order hash identically, whether they were built by
    /// replaying from genesis or seeded from a snapshot and fed the tail.
    pub fn state_hash(&self) -> Hash256 {
        hash_state_entries(self.iter())
    }

    /// Exports every `(key, value, version)` in key order — the snapshot
    /// payload.
    pub fn export_entries(&self) -> Vec<StateEntry> {
        self.entries
            .iter()
            .map(|(k, (v, ver))| (k.clone(), v.clone(), *ver))
            .collect()
    }

    /// Rebuilds a database from exported entries (snapshot installation).
    pub fn from_entries(entries: Vec<StateEntry>) -> Self {
        StateDb {
            entries: entries
                .into_iter()
                .map(|(k, v, ver)| (k, (v, ver)))
                .collect(),
        }
    }

    /// Sum of all `u64`-encoded counter values; `None` if any value is not a
    /// counter. The Table II experiment uses this to count conflicts: the
    /// number of invalidated increments equals `issued - sum`.
    pub fn counter_sum(&self) -> Option<u64> {
        let mut sum = 0u64;
        for (_, v, _) in self.iter() {
            sum += v.as_u64()?;
        }
        Some(sum)
    }
}

impl StateReader for StateDb {
    fn get(&self, key: &Key) -> Option<(&Value, Version)> {
        self.entries.get(key).map(|(v, ver)| (v, *ver))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(key: &str, v: u64) -> WriteItem {
        WriteItem {
            key: Key::from(key),
            value: Value::from_u64(v),
        }
    }

    #[test]
    fn apply_overwrites_value_and_version() {
        let mut db = StateDb::new();
        db.apply(Version::new(1, 0), &[w("a", 1)]);
        db.apply(Version::new(2, 3), &[w("a", 2)]);
        let (value, version) = db.get(&Key::from("a")).unwrap();
        assert_eq!(value.as_u64(), Some(2));
        assert_eq!(version, Version::new(2, 3));
        assert_eq!(db.len(), 1);
    }

    #[test]
    fn absent_keys_read_as_none() {
        let db = StateDb::new();
        assert!(db.get(&Key::from("missing")).is_none());
        assert!(db.get_version(&Key::from("missing")).is_none());
        assert!(db.is_empty());
    }

    #[test]
    fn iter_is_key_ordered() {
        let mut db = StateDb::new();
        db.apply(Version::new(1, 0), &[w("b", 2), w("a", 1), w("c", 3)]);
        let keys: Vec<_> = db.iter().map(|(k, _, _)| k.0.clone()).collect();
        assert_eq!(keys, vec!["a", "b", "c"]);
    }

    #[test]
    fn state_hash_round_trips_through_export_import() {
        let mut db = StateDb::new();
        db.apply(Version::new(1, 0), &[w("b", 2), w("a", 1)]);
        db.apply(Version::new(2, 1), &[w("a", 3)]);
        let hash = db.state_hash();
        let rebuilt = StateDb::from_entries(db.export_entries());
        assert_eq!(rebuilt.state_hash(), hash);
        assert_eq!(rebuilt.len(), db.len());
        let (value, version) = rebuilt.get(&Key::from("a")).unwrap();
        assert_eq!(value.as_u64(), Some(3));
        assert_eq!(version, Version::new(2, 1));
        // The hash pins versions, not just values.
        let mut same_values = StateDb::new();
        same_values.apply(Version::new(9, 0), &[w("a", 3), w("b", 2)]);
        assert_ne!(same_values.state_hash(), hash);
    }

    #[test]
    fn counter_sum_adds_counters() {
        let mut db = StateDb::new();
        db.apply(Version::new(1, 0), &[w("a", 10), w("b", 32)]);
        assert_eq!(db.counter_sum(), Some(42));
        db.apply(
            Version::new(1, 1),
            &[WriteItem {
                key: Key::from("c"),
                value: Value(vec![1]),
            }],
        );
        assert_eq!(db.counter_sum(), None);
    }
}
