//! The peer-local ledger: hash-chained block storage plus materialized state.

use std::fmt;
use std::sync::Arc;

use fabric_types::block::{Block, BlockRef};
use fabric_types::crypto::Hash256;
use fabric_types::msp::Msp;
use fabric_types::rwset::Version;
use fabric_types::snapshot::{Checkpoint, Snapshot, SnapshotRef};
use fabric_types::transaction::EndorsementPolicy;

use crate::state::StateDb;
use crate::validate::{validate_block, BlockValidation};

/// Why a block was rejected at commit time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommitError {
    /// The block's number is not the next height.
    NotNext {
        /// The height the ledger expected.
        expected: u64,
        /// The height the block carries.
        got: u64,
    },
    /// The block's previous-hash link does not match the chain tip.
    BrokenLink,
    /// The block's data hash does not match its transactions.
    DataTampered,
}

impl fmt::Display for CommitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CommitError::NotNext { expected, got } => {
                write!(
                    f,
                    "block {got} is not the next height (expected {expected})"
                )
            }
            CommitError::BrokenLink => write!(f, "previous-hash link does not match chain tip"),
            CommitError::DataTampered => write!(f, "data hash does not match transactions"),
        }
    }
}

impl std::error::Error for CommitError {}

/// Why a snapshot was rejected at installation time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The entries do not hash to the advertised checkpoint.
    StateHashMismatch,
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::StateHashMismatch => {
                write!(f, "snapshot entries do not hash to the checkpoint")
            }
        }
    }
}

impl std::error::Error for SnapshotError {}

/// Summary of one committed block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommitSummary {
    /// Height of the committed block.
    pub block_num: u64,
    /// Per-transaction validation outcome.
    pub validation: BlockValidation,
}

/// Cumulative validation statistics across all committed blocks.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LedgerStats {
    /// Transactions whose writes were applied.
    pub valid_txs: u64,
    /// Transactions invalidated by an MVCC (validation-time) conflict.
    pub mvcc_conflicts: u64,
    /// Transactions invalidated by an endorsement-policy failure.
    pub endorsement_failures: u64,
}

impl LedgerStats {
    /// Total invalidated transactions.
    pub fn invalid_txs(&self) -> u64 {
        self.mvcc_conflicts + self.endorsement_failures
    }
}

/// A peer's copy of the blockchain and its world state.
///
/// Blocks must be committed in height order; out-of-order delivery is the
/// gossip layer's problem (its payload buffer reorders). The genesis block
/// is implicit: a fresh ledger has height 1 in the sense that block number 1
/// is the next expected block, with the genesis block pre-committed.
///
/// ```
/// use std::sync::Arc;
/// use fabric_ledger::ledger::Ledger;
/// use fabric_types::block::Block;
/// use fabric_types::msp::Msp;
/// use fabric_types::transaction::EndorsementPolicy;
///
/// let mut ledger = Ledger::new(Arc::new(Msp::single_org(3)), EndorsementPolicy::AnyMember);
/// let next = Block::new(1, ledger.latest_hash(), vec![]);
/// ledger.commit(next.into()).unwrap();
/// assert_eq!(ledger.height(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct Ledger {
    msp: Arc<Msp>,
    policy: EndorsementPolicy,
    /// Physically held blocks: the whole chain for a genesis ledger, only
    /// the tail above `base - 1` for a snapshot-seeded one.
    blocks: Vec<BlockRef>,
    /// Number of blocks below `blocks[0]` that were absorbed through a
    /// snapshot (0 for a genesis ledger). `height() = base + blocks.len()`.
    base: u64,
    /// Header hash of block `base - 1`, the link `blocks[0]` must match
    /// when the physical prefix is empty. Unused for genesis ledgers.
    base_hash: Hash256,
    state: StateDb,
    stats: LedgerStats,
    /// Emit a checkpoint every this many blocks (`None`: never).
    checkpoint_interval: Option<u64>,
    /// The latest snapshot, shared for serving (see [`Ledger::snapshot`]).
    snapshot: Option<SnapshotRef>,
    /// Every checkpoint emitted by this ledger, in height order — the
    /// cross-run equivalence trail (40 bytes each, so keeping all is
    /// cheap).
    checkpoint_log: Vec<Checkpoint>,
}

impl Ledger {
    /// Creates a ledger holding only the genesis block.
    pub fn new(msp: Arc<Msp>, policy: EndorsementPolicy) -> Self {
        Ledger {
            msp,
            policy,
            blocks: vec![BlockRef::new(Block::genesis())],
            base: 0,
            base_hash: Hash256::ZERO,
            state: StateDb::new(),
            stats: LedgerStats::default(),
            checkpoint_interval: None,
            snapshot: None,
            checkpoint_log: Vec::new(),
        }
    }

    /// Turns on checkpoint emission: after committing block `n` with
    /// `n % every == 0`, the ledger records a [`Checkpoint`] (state hash +
    /// height) and retains the matching [`Snapshot`] for serving. The work
    /// happens inside `commit` of the boundary block only — in a real
    /// deployment it would run on a background thread (cf. Solana's
    /// accounts-background-service); in the simulation it adds no events
    /// and no virtual time, so dissemination timing is unchanged.
    ///
    /// # Panics
    ///
    /// Panics when `every` is zero.
    pub fn with_checkpoints(mut self, every: u64) -> Self {
        assert!(every > 0, "checkpoint interval must be positive");
        self.checkpoint_interval = Some(every);
        self
    }

    /// Stands up a ledger from a snapshot: verifies the state hash, adopts
    /// the state at `checkpoint.height`, and resumes committing at
    /// `checkpoint.height + 1`. Blocks at or below the checkpoint are
    /// logically committed but not physically held ([`Ledger::block`]
    /// returns `None` for them).
    ///
    /// The resulting ledger re-serves the installed snapshot and keeps
    /// emitting its own checkpoints at the same cadence, so equivalence
    /// with a genesis-replay ledger is checkable checkpoint by checkpoint.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::StateHashMismatch`] when the entries do not hash to
    /// the advertised checkpoint.
    pub fn from_snapshot(
        msp: Arc<Msp>,
        policy: EndorsementPolicy,
        snapshot: SnapshotRef,
        checkpoint_interval: Option<u64>,
    ) -> Result<Self, SnapshotError> {
        if !snapshot.verify() {
            return Err(SnapshotError::StateHashMismatch);
        }
        Ok(Ledger {
            msp,
            policy,
            blocks: Vec::new(),
            base: snapshot.checkpoint.height + 1,
            base_hash: snapshot.last_block_hash,
            state: StateDb::from_entries(snapshot.entries.clone()),
            stats: LedgerStats::default(),
            checkpoint_interval,
            checkpoint_log: vec![snapshot.checkpoint],
            snapshot: Some(snapshot),
        })
    }

    /// Chain height: number of blocks committed, genesis included.
    pub fn height(&self) -> u64 {
        self.base + self.blocks.len() as u64
    }

    /// Number of blocks absorbed through a snapshot instead of replay
    /// (0 for a genesis ledger).
    pub fn base_height(&self) -> u64 {
        self.base
    }

    /// Hash of the chain tip.
    pub fn latest_hash(&self) -> Hash256 {
        self.blocks
            .last()
            .map(|b| b.hash())
            .unwrap_or(self.base_hash)
    }

    /// The block at height `number`, if committed **and physically held**
    /// (snapshot-absorbed blocks are not).
    pub fn block(&self, number: u64) -> Option<&BlockRef> {
        let at = number.checked_sub(self.base)?;
        self.blocks.get(at as usize)
    }

    /// Whether the block at height `number` is committed (snapshot-absorbed
    /// blocks count: their writes are in the state).
    pub fn contains(&self, number: u64) -> bool {
        number < self.height()
    }

    /// All physically held blocks in height order (the whole chain for a
    /// genesis ledger, the post-snapshot tail otherwise).
    pub fn blocks(&self) -> &[BlockRef] {
        &self.blocks
    }

    /// The latest checkpoint emitted or installed, if any.
    pub fn latest_checkpoint(&self) -> Option<Checkpoint> {
        self.checkpoint_log.last().copied()
    }

    /// Every checkpoint this ledger has emitted or installed, in height
    /// order — byte-identical across a genesis-replay ledger and a
    /// snapshot-bootstrapped one for all common heights (the equivalence
    /// contract).
    pub fn checkpoints(&self) -> &[Checkpoint] {
        &self.checkpoint_log
    }

    /// The latest snapshot, ready to serve (a reference-count bump, never
    /// a state copy). `None` until the first checkpoint boundary.
    pub fn snapshot(&self) -> Option<SnapshotRef> {
        self.snapshot.clone()
    }

    /// The materialized world state.
    pub fn state(&self) -> &StateDb {
        &self.state
    }

    /// Cumulative validation statistics.
    pub fn stats(&self) -> LedgerStats {
        self.stats
    }

    /// Validates and commits the next block: checks chain linkage and data
    /// integrity, runs endorsement-policy and MVCC validation, applies the
    /// writes of valid transactions.
    ///
    /// # Errors
    ///
    /// Returns a [`CommitError`] without mutating anything when the block is
    /// not the next height, does not link to the tip, or is corrupted.
    pub fn commit(&mut self, block: BlockRef) -> Result<CommitSummary, CommitError> {
        let expected = self.height();
        if block.number() != expected {
            return Err(CommitError::NotNext {
                expected,
                got: block.number(),
            });
        }
        if block.header.prev_hash != self.latest_hash() {
            return Err(CommitError::BrokenLink);
        }
        if !block.data_intact() {
            return Err(CommitError::DataTampered);
        }
        let validation = validate_block(&self.msp, &self.policy, &block, &self.state);
        for (tx_num, (tx, flag)) in block.txs.iter().zip(validation.flags.iter()).enumerate() {
            if flag.is_valid() {
                let version = Version::new(block.number(), tx_num as u32);
                self.state.apply(version, &tx.rwset.writes);
                self.stats.valid_txs += 1;
            } else {
                match flag {
                    crate::validate::TxValidation::MvccConflict => self.stats.mvcc_conflicts += 1,
                    crate::validate::TxValidation::EndorsementFailure => {
                        self.stats.endorsement_failures += 1
                    }
                    crate::validate::TxValidation::Valid => unreachable!(),
                }
            }
        }
        let block_num = block.number();
        self.blocks.push(block);
        if let Some(every) = self.checkpoint_interval {
            if block_num > 0 && block_num.is_multiple_of(every) {
                self.emit_checkpoint(block_num);
            }
        }
        Ok(CommitSummary {
            block_num,
            validation,
        })
    }

    /// Records the checkpoint for the just-committed `height` and retains
    /// its snapshot for serving. Only the latest snapshot is kept (full
    /// state); the checkpoint log keeps every fingerprint.
    fn emit_checkpoint(&mut self, height: u64) {
        let checkpoint = Checkpoint {
            height,
            state_hash: self.state.state_hash(),
        };
        self.checkpoint_log.push(checkpoint);
        self.snapshot = Some(SnapshotRef::new(Snapshot {
            checkpoint,
            last_block_hash: self.latest_hash(),
            entries: self.state.export_entries(),
        }));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::StateReader;
    use fabric_types::ids::{ClientId, PeerId, TxId};
    use fabric_types::rwset::RwSet;
    use fabric_types::transaction::Transaction;

    fn ledger() -> Ledger {
        Ledger::new(Arc::new(Msp::single_org(3)), EndorsementPolicy::AnyMember)
    }

    fn endorsed_increment(
        led: &Ledger,
        id: u64,
        key: &str,
        read_version: Option<fabric_types::rwset::Version>,
        value: u64,
    ) -> Transaction {
        let rwset = RwSet::builder()
            .read(key, read_version)
            .write_u64(key, value)
            .build();
        let mut tx = Transaction::new(TxId(id), "increment", ClientId(0), rwset);
        tx.endorse(&led.msp, PeerId(0));
        tx
    }

    #[test]
    fn fresh_ledger_has_genesis() {
        let led = ledger();
        assert_eq!(led.height(), 1);
        assert!(led.contains(0));
        assert!(!led.contains(1));
        assert_eq!(led.block(0).unwrap().number(), 0);
    }

    #[test]
    fn commit_applies_valid_writes_and_advances_state() {
        let mut led = ledger();
        let tx = endorsed_increment(&led, 1, "k", None, 1);
        let block = BlockRef::new(Block::new(1, led.latest_hash(), vec![tx]));
        let summary = led.commit(block).unwrap();
        assert_eq!(summary.block_num, 1);
        assert_eq!(summary.validation.valid_count(), 1);
        assert_eq!(led.height(), 2);
        assert_eq!(led.state().counter_sum(), Some(1));
        assert_eq!(led.stats().valid_txs, 1);
    }

    #[test]
    fn commit_rejects_wrong_height() {
        let mut led = ledger();
        let block = BlockRef::new(Block::new(5, led.latest_hash(), vec![]));
        assert_eq!(
            led.commit(block),
            Err(CommitError::NotNext {
                expected: 1,
                got: 5
            })
        );
        assert_eq!(led.height(), 1);
    }

    #[test]
    fn commit_rejects_broken_link() {
        let mut led = ledger();
        let block = BlockRef::new(Block::new(1, Hash256([9; 32]), vec![]));
        assert_eq!(led.commit(block), Err(CommitError::BrokenLink));
    }

    #[test]
    fn commit_rejects_tampered_data() {
        let mut led = ledger();
        let tx = endorsed_increment(&led, 1, "k", None, 1);
        let mut block = Block::new(1, led.latest_hash(), vec![]);
        block.txs.push(tx); // bypasses data_hash computation
        assert_eq!(
            led.commit(BlockRef::new(block)),
            Err(CommitError::DataTampered)
        );
    }

    #[test]
    fn conflicting_tx_counts_as_mvcc_conflict() {
        let mut led = ledger();
        let tx1 = endorsed_increment(&led, 1, "k", None, 1);
        let tx2 = endorsed_increment(&led, 2, "k", None, 1); // same base read
        let block = BlockRef::new(Block::new(1, led.latest_hash(), vec![tx1, tx2]));
        let summary = led.commit(block).unwrap();
        assert_eq!(summary.validation.mvcc_conflicts(), 1);
        assert_eq!(led.stats().mvcc_conflicts, 1);
        assert_eq!(led.state().counter_sum(), Some(1));
    }

    #[test]
    fn stale_read_across_blocks_conflicts() {
        let mut led = ledger();
        let tx1 = endorsed_increment(&led, 1, "k", None, 1);
        let b1 = BlockRef::new(Block::new(1, led.latest_hash(), vec![tx1]));
        led.commit(b1).unwrap();
        // Endorsed before block 1 committed: still reads version None.
        let tx2 = endorsed_increment(&led, 2, "k", None, 1);
        let b2 = BlockRef::new(Block::new(2, led.latest_hash(), vec![tx2]));
        let summary = led.commit(b2).unwrap();
        assert_eq!(summary.validation.mvcc_conflicts(), 1);
        assert_eq!(led.stats().invalid_txs(), 1);
    }

    fn grow(led: &mut Ledger, from: u64, to: u64) {
        for n in from..=to {
            let tx = endorsed_increment(led, n, "k", led.state().get_version(&"k".into()), n);
            let block = BlockRef::new(Block::new(n, led.latest_hash(), vec![tx]));
            led.commit(block).unwrap();
        }
    }

    #[test]
    fn checkpoints_fire_on_interval_boundaries_only() {
        let mut led = ledger().with_checkpoints(4);
        assert!(led.latest_checkpoint().is_none());
        grow(&mut led, 1, 3);
        assert!(led.latest_checkpoint().is_none(), "below the boundary");
        grow(&mut led, 4, 4);
        let cp = led.latest_checkpoint().unwrap();
        assert_eq!(cp.height, 4);
        assert_eq!(cp.state_hash, led.state().state_hash());
        grow(&mut led, 5, 9);
        assert_eq!(led.latest_checkpoint().unwrap().height, 8);
        assert_eq!(
            led.checkpoints()
                .iter()
                .map(|c| c.height)
                .collect::<Vec<_>>(),
            vec![4, 8]
        );
        let snap = led.snapshot().unwrap();
        assert_eq!(snap.checkpoint.height, 8);
        assert!(snap.verify());
        // Serving is a pointer bump, not a state copy.
        let again = led.snapshot().unwrap();
        assert!(fabric_types::snapshot::SnapshotRef::ptr_eq(&snap, &again));
    }

    #[test]
    fn snapshot_bootstrap_replays_tail_to_identical_state() {
        let mut full = ledger().with_checkpoints(5);
        grow(&mut full, 1, 12);
        let snap = full.snapshot().unwrap();
        assert_eq!(snap.checkpoint.height, 10);

        let mut joiner = Ledger::from_snapshot(
            Arc::new(Msp::single_org(3)),
            EndorsementPolicy::AnyMember,
            snap,
            Some(5),
        )
        .unwrap();
        assert_eq!(joiner.height(), 11, "resumes above the checkpoint");
        assert_eq!(joiner.base_height(), 11);
        assert!(joiner.contains(10), "absorbed blocks count as committed");
        assert!(joiner.block(10).is_none(), "but are not physically held");

        // Replay only the tail: blocks 11 and 12 from the full ledger.
        for n in 11..=12 {
            joiner.commit(full.block(n).unwrap().clone()).unwrap();
        }
        assert_eq!(joiner.height(), full.height());
        assert_eq!(joiner.latest_hash(), full.latest_hash());
        assert_eq!(joiner.state().state_hash(), full.state().state_hash());
        assert_eq!(joiner.state().counter_sum(), full.state().counter_sum());
        assert_eq!(joiner.blocks().len(), 2, "O(tail), not O(chain)");
    }

    #[test]
    fn snapshot_ledger_rejects_wrong_tail() {
        let mut full = ledger().with_checkpoints(4);
        grow(&mut full, 1, 6);
        let snap = full.snapshot().unwrap();
        let mut joiner = Ledger::from_snapshot(
            Arc::new(Msp::single_org(3)),
            EndorsementPolicy::AnyMember,
            snap,
            None,
        )
        .unwrap();
        // Wrong height and broken link are both caught above the snapshot.
        assert!(matches!(
            joiner.commit(full.block(6).unwrap().clone()),
            Err(CommitError::NotNext {
                expected: 5,
                got: 6
            })
        ));
        let forged = BlockRef::new(Block::new(5, Hash256([9; 32]), vec![]));
        assert_eq!(joiner.commit(forged), Err(CommitError::BrokenLink));
        // The genuine block 5 links to the snapshot's tip hash.
        joiner.commit(full.block(5).unwrap().clone()).unwrap();
        assert_eq!(joiner.height(), 6);
    }

    #[test]
    fn tampered_snapshot_is_rejected() {
        let mut full = ledger().with_checkpoints(2);
        grow(&mut full, 1, 2);
        let snap = full.snapshot().unwrap();
        let mut forged = (*snap).clone();
        forged.entries[0].1 = fabric_types::rwset::Value::from_u64(1_000_000);
        assert_eq!(
            Ledger::from_snapshot(
                Arc::new(Msp::single_org(3)),
                EndorsementPolicy::AnyMember,
                forged.into(),
                None,
            )
            .err(),
            Some(SnapshotError::StateHashMismatch)
        );
    }

    #[test]
    fn chain_of_commits_preserves_linkage() {
        let mut led = ledger();
        for n in 1..=20 {
            let tx = endorsed_increment(&led, n, "k", led.state().get_version(&"k".into()), n);
            let block = BlockRef::new(Block::new(n, led.latest_hash(), vec![tx]));
            led.commit(block).unwrap();
        }
        assert_eq!(led.height(), 21);
        assert_eq!(fabric_types::block::verify_chain(led.blocks()), Ok(()));
        assert_eq!(led.stats().valid_txs, 20);
        assert_eq!(led.state().counter_sum(), Some(20));
    }
}
