//! The peer-local ledger: hash-chained block storage plus materialized state.

use std::collections::BTreeSet;
use std::fmt;
use std::sync::Arc;

use fabric_types::block::{Block, BlockRef};
use fabric_types::crypto::Hash256;
use fabric_types::msp::Msp;
use fabric_types::rwset::{Key, Version};
use fabric_types::snapshot::{Checkpoint, DeltaSnapshot, Snapshot, SnapshotRef};
use fabric_types::transaction::EndorsementPolicy;

use crate::state::{StateDb, StateReader};
use crate::validate::{validate_block, BlockValidation};

/// Why a block was rejected at commit time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommitError {
    /// The block's number is not the next height.
    NotNext {
        /// The height the ledger expected.
        expected: u64,
        /// The height the block carries.
        got: u64,
    },
    /// The block's previous-hash link does not match the chain tip.
    BrokenLink,
    /// The block's data hash does not match its transactions.
    DataTampered,
}

impl fmt::Display for CommitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CommitError::NotNext { expected, got } => {
                write!(
                    f,
                    "block {got} is not the next height (expected {expected})"
                )
            }
            CommitError::BrokenLink => write!(f, "previous-hash link does not match chain tip"),
            CommitError::DataTampered => write!(f, "data hash does not match transactions"),
        }
    }
}

impl std::error::Error for CommitError {}

/// Why a snapshot was rejected at installation time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The entries do not hash to the advertised checkpoint.
    StateHashMismatch,
    /// A delta in the chain does not apply over its predecessor (base
    /// checkpoint mismatch or merged entries failing the chained hash).
    BrokenDeltaChain,
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::StateHashMismatch => {
                write!(f, "snapshot entries do not hash to the checkpoint")
            }
            SnapshotError::BrokenDeltaChain => {
                write!(f, "delta snapshot does not chain to its base checkpoint")
            }
        }
    }
}

impl std::error::Error for SnapshotError {}

/// How a ledger emits and retains snapshot artifacts at its checkpoint
/// boundaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnapshotPolicy {
    /// Emit a checkpoint every this many blocks. Must be positive.
    pub every: u64,
    /// Keep the last this many full snapshots; older exports are pruned
    /// (deltas no retained full can anchor are pruned with them).
    pub retain_full: usize,
    /// Emit a [`DeltaSnapshot`] at every checkpoint, and a full snapshot
    /// only every [`Self::full_every`] checkpoints.
    pub delta: bool,
    /// Full-snapshot cadence, counted in checkpoints, when `delta` is on.
    pub full_every: u64,
}

impl SnapshotPolicy {
    /// Full snapshots at every checkpoint, keeping the last `retain_full`
    /// (the PR 8 behavior plus retention).
    pub fn full(every: u64) -> Self {
        SnapshotPolicy {
            every,
            retain_full: 2,
            delta: false,
            full_every: 1,
        }
    }

    /// Deltas at every checkpoint, fulls only every `full_every`
    /// checkpoints: retained bytes per checkpoint scale with the writes in
    /// the interval, not with total state size.
    pub fn delta(every: u64, full_every: u64) -> Self {
        SnapshotPolicy {
            every,
            retain_full: 2,
            delta: true,
            full_every,
        }
    }

    fn assert_valid(&self) {
        assert!(self.every > 0, "checkpoint interval must be positive");
        assert!(
            self.retain_full > 0,
            "must retain at least one full snapshot"
        );
        assert!(
            self.full_every > 0,
            "full-snapshot cadence must be positive"
        );
    }
}

/// What one checkpoint added to the retained snapshot artifacts: the wire
/// bytes of the full snapshot and/or delta emitted at that boundary (0 when
/// that artifact wasn't emitted there). The per-checkpoint retention curve —
/// flat for deltas, growing with state size for fulls.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetentionRecord {
    /// Block height of the checkpoint.
    pub height: u64,
    /// Wire bytes of the full snapshot emitted here, if any.
    pub full_bytes: u64,
    /// Wire bytes of the delta snapshot emitted here, if any.
    pub delta_bytes: u64,
}

/// Summary of one committed block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommitSummary {
    /// Height of the committed block.
    pub block_num: u64,
    /// Per-transaction validation outcome.
    pub validation: BlockValidation,
}

/// Cumulative validation statistics across all committed blocks.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LedgerStats {
    /// Transactions whose writes were applied.
    pub valid_txs: u64,
    /// Transactions invalidated by an MVCC (validation-time) conflict.
    pub mvcc_conflicts: u64,
    /// Transactions invalidated by an endorsement-policy failure.
    pub endorsement_failures: u64,
}

impl LedgerStats {
    /// Total invalidated transactions.
    pub fn invalid_txs(&self) -> u64 {
        self.mvcc_conflicts + self.endorsement_failures
    }
}

/// A peer's copy of the blockchain and its world state.
///
/// Blocks must be committed in height order; out-of-order delivery is the
/// gossip layer's problem (its payload buffer reorders). The genesis block
/// is implicit: a fresh ledger has height 1 in the sense that block number 1
/// is the next expected block, with the genesis block pre-committed.
///
/// ```
/// use std::sync::Arc;
/// use fabric_ledger::ledger::Ledger;
/// use fabric_types::block::Block;
/// use fabric_types::msp::Msp;
/// use fabric_types::transaction::EndorsementPolicy;
///
/// let mut ledger = Ledger::new(Arc::new(Msp::single_org(3)), EndorsementPolicy::AnyMember);
/// let next = Block::new(1, ledger.latest_hash(), vec![]);
/// ledger.commit(next.into()).unwrap();
/// assert_eq!(ledger.height(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct Ledger {
    msp: Arc<Msp>,
    policy: EndorsementPolicy,
    /// Physically held blocks: the whole chain for a genesis ledger, only
    /// the tail above `base - 1` for a snapshot-seeded one.
    blocks: Vec<BlockRef>,
    /// Number of blocks below `blocks[0]` that were absorbed through a
    /// snapshot (0 for a genesis ledger). `height() = base + blocks.len()`.
    base: u64,
    /// Header hash of block `base - 1`, the link `blocks[0]` must match
    /// when the physical prefix is empty. Unused for genesis ledgers.
    base_hash: Hash256,
    state: StateDb,
    stats: LedgerStats,
    /// Snapshot emission and retention rules (`None`: never checkpoint).
    snapshot_policy: Option<SnapshotPolicy>,
    /// Retained full snapshots in height order, at most
    /// [`SnapshotPolicy::retain_full`] of them; the last is the one
    /// [`Ledger::snapshot`] serves.
    retained: Vec<SnapshotRef>,
    /// Retained delta snapshots in height order, pruned together with the
    /// fulls they anchor to.
    deltas: Vec<DeltaSnapshot>,
    /// Keys written since the last checkpoint — the next delta's payload.
    /// Only maintained under a delta policy.
    dirty: BTreeSet<Key>,
    /// Per-checkpoint retained-bytes accounting, in height order.
    retention_log: Vec<RetentionRecord>,
    /// Every checkpoint emitted by this ledger, in height order — the
    /// cross-run equivalence trail (40 bytes each, so keeping all is
    /// cheap).
    checkpoint_log: Vec<Checkpoint>,
}

impl Ledger {
    /// Creates a ledger holding only the genesis block.
    pub fn new(msp: Arc<Msp>, policy: EndorsementPolicy) -> Self {
        Ledger {
            msp,
            policy,
            blocks: vec![BlockRef::new(Block::genesis())],
            base: 0,
            base_hash: Hash256::ZERO,
            state: StateDb::new(),
            stats: LedgerStats::default(),
            snapshot_policy: None,
            retained: Vec::new(),
            deltas: Vec::new(),
            dirty: BTreeSet::new(),
            retention_log: Vec::new(),
            checkpoint_log: Vec::new(),
        }
    }

    /// Turns on checkpoint emission: after committing block `n` with
    /// `n % every == 0`, the ledger records a [`Checkpoint`] (state hash +
    /// height) and retains the matching [`Snapshot`] for serving, keeping
    /// the last [`SnapshotPolicy::full`]'s `retain_full` exports and
    /// pruning older ones. The work happens inside `commit` of the boundary
    /// block only — in a real deployment it would run on a background
    /// thread (cf. Solana's accounts-background-service); in the simulation
    /// it adds no events and no virtual time, so dissemination timing is
    /// unchanged.
    ///
    /// # Panics
    ///
    /// Panics when `every` is zero.
    pub fn with_checkpoints(self, every: u64) -> Self {
        self.with_snapshot_policy(SnapshotPolicy::full(every))
    }

    /// Turns on checkpoint emission under an explicit [`SnapshotPolicy`]
    /// (retention depth, delta emission, full-snapshot cadence).
    ///
    /// # Panics
    ///
    /// Panics when the policy is invalid (zero interval, cadence, or
    /// retention depth).
    pub fn with_snapshot_policy(mut self, policy: SnapshotPolicy) -> Self {
        policy.assert_valid();
        self.snapshot_policy = Some(policy);
        self
    }

    /// Stands up a ledger from a snapshot: verifies the state hash, adopts
    /// the state at `checkpoint.height`, and resumes committing at
    /// `checkpoint.height + 1`. Blocks at or below the checkpoint are
    /// logically committed but not physically held ([`Ledger::block`]
    /// returns `None` for them).
    ///
    /// The resulting ledger re-serves the installed snapshot and keeps
    /// emitting its own checkpoints at the same cadence, so equivalence
    /// with a genesis-replay ledger is checkable checkpoint by checkpoint.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::StateHashMismatch`] when the entries do not hash to
    /// the advertised checkpoint.
    pub fn from_snapshot(
        msp: Arc<Msp>,
        policy: EndorsementPolicy,
        snapshot: SnapshotRef,
        checkpoint_interval: Option<u64>,
    ) -> Result<Self, SnapshotError> {
        Self::from_snapshot_with_policy(
            msp,
            policy,
            snapshot,
            checkpoint_interval.map(SnapshotPolicy::full),
        )
    }

    /// [`Self::from_snapshot`] with an explicit [`SnapshotPolicy`] for the
    /// checkpoints the new ledger will emit itself.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::StateHashMismatch`] when the entries do not hash to
    /// the advertised checkpoint.
    pub fn from_snapshot_with_policy(
        msp: Arc<Msp>,
        policy: EndorsementPolicy,
        snapshot: SnapshotRef,
        snapshot_policy: Option<SnapshotPolicy>,
    ) -> Result<Self, SnapshotError> {
        if let Some(p) = &snapshot_policy {
            p.assert_valid();
        }
        if !snapshot.verify() {
            return Err(SnapshotError::StateHashMismatch);
        }
        Ok(Ledger {
            msp,
            policy,
            blocks: Vec::new(),
            base: snapshot.checkpoint.height + 1,
            base_hash: snapshot.last_block_hash,
            state: StateDb::from_entries(snapshot.entries.clone()),
            stats: LedgerStats::default(),
            snapshot_policy,
            deltas: Vec::new(),
            dirty: BTreeSet::new(),
            retention_log: Vec::new(),
            checkpoint_log: vec![snapshot.checkpoint],
            retained: vec![snapshot],
        })
    }

    /// Stands up a ledger from a full snapshot plus a chain of deltas: each
    /// delta is applied over its predecessor with its chain link verified,
    /// and the resulting full state seeds the ledger exactly as
    /// [`Self::from_snapshot`] would — a delta-chain bootstrap lands on a
    /// state byte-identical to a full-snapshot bootstrap at the same
    /// height (proptested in `tests/delta_equivalence.rs`).
    ///
    /// # Errors
    ///
    /// [`SnapshotError::BrokenDeltaChain`] when a delta's base checkpoint
    /// doesn't match its predecessor or the merged entries fail the chained
    /// hash; [`SnapshotError::StateHashMismatch`] when the base itself is
    /// corrupt.
    pub fn from_delta_chain(
        msp: Arc<Msp>,
        policy: EndorsementPolicy,
        base: SnapshotRef,
        deltas: &[DeltaSnapshot],
        snapshot_policy: Option<SnapshotPolicy>,
    ) -> Result<Self, SnapshotError> {
        if !base.verify() {
            return Err(SnapshotError::StateHashMismatch);
        }
        let mut current = (*base).clone();
        for delta in deltas {
            current = delta
                .apply_to(&current)
                .ok_or(SnapshotError::BrokenDeltaChain)?;
        }
        Self::from_snapshot_with_policy(msp, policy, SnapshotRef::new(current), snapshot_policy)
    }

    /// Chain height: number of blocks committed, genesis included.
    pub fn height(&self) -> u64 {
        self.base + self.blocks.len() as u64
    }

    /// Number of blocks absorbed through a snapshot instead of replay
    /// (0 for a genesis ledger).
    pub fn base_height(&self) -> u64 {
        self.base
    }

    /// Hash of the chain tip.
    pub fn latest_hash(&self) -> Hash256 {
        self.blocks
            .last()
            .map(|b| b.hash())
            .unwrap_or(self.base_hash)
    }

    /// The block at height `number`, if committed **and physically held**
    /// (snapshot-absorbed blocks are not).
    pub fn block(&self, number: u64) -> Option<&BlockRef> {
        let at = number.checked_sub(self.base)?;
        self.blocks.get(at as usize)
    }

    /// Whether the block at height `number` is committed (snapshot-absorbed
    /// blocks count: their writes are in the state).
    pub fn contains(&self, number: u64) -> bool {
        number < self.height()
    }

    /// All physically held blocks in height order (the whole chain for a
    /// genesis ledger, the post-snapshot tail otherwise).
    pub fn blocks(&self) -> &[BlockRef] {
        &self.blocks
    }

    /// The latest checkpoint emitted or installed, if any.
    pub fn latest_checkpoint(&self) -> Option<Checkpoint> {
        self.checkpoint_log.last().copied()
    }

    /// Every checkpoint this ledger has emitted or installed, in height
    /// order — byte-identical across a genesis-replay ledger and a
    /// snapshot-bootstrapped one for all common heights (the equivalence
    /// contract).
    pub fn checkpoints(&self) -> &[Checkpoint] {
        &self.checkpoint_log
    }

    /// The latest full snapshot, ready to serve (a reference-count bump,
    /// never a state copy). `None` until the first checkpoint boundary.
    pub fn snapshot(&self) -> Option<SnapshotRef> {
        self.retained.last().cloned()
    }

    /// Every retained full snapshot in height order (at most
    /// [`SnapshotPolicy::retain_full`]; older exports are pruned).
    pub fn retained_snapshots(&self) -> &[SnapshotRef] {
        &self.retained
    }

    /// Retained delta snapshots in height order. Under a delta policy these
    /// chain from a retained full up to the latest checkpoint; pruned
    /// together with the fulls that anchor them.
    pub fn retained_deltas(&self) -> &[DeltaSnapshot] {
        &self.deltas
    }

    /// Per-checkpoint retained-bytes accounting: what each boundary added
    /// in full-snapshot and delta bytes. Flat under a delta policy, growing
    /// with state size under a full policy — the curve the `long_chain`
    /// sweep records.
    pub fn retention_log(&self) -> &[RetentionRecord] {
        &self.retention_log
    }

    /// The materialized world state.
    pub fn state(&self) -> &StateDb {
        &self.state
    }

    /// Cumulative validation statistics.
    pub fn stats(&self) -> LedgerStats {
        self.stats
    }

    /// Validates and commits the next block: checks chain linkage and data
    /// integrity, runs endorsement-policy and MVCC validation, applies the
    /// writes of valid transactions.
    ///
    /// # Errors
    ///
    /// Returns a [`CommitError`] without mutating anything when the block is
    /// not the next height, does not link to the tip, or is corrupted.
    pub fn commit(&mut self, block: BlockRef) -> Result<CommitSummary, CommitError> {
        let expected = self.height();
        if block.number() != expected {
            return Err(CommitError::NotNext {
                expected,
                got: block.number(),
            });
        }
        if block.header.prev_hash != self.latest_hash() {
            return Err(CommitError::BrokenLink);
        }
        if !block.data_intact() {
            return Err(CommitError::DataTampered);
        }
        let validation = validate_block(&self.msp, &self.policy, &block, &self.state);
        for (tx_num, (tx, flag)) in block.txs.iter().zip(validation.flags.iter()).enumerate() {
            if flag.is_valid() {
                let version = Version::new(block.number(), tx_num as u32);
                if self.snapshot_policy.is_some_and(|p| p.delta) {
                    for w in &tx.rwset.writes {
                        self.dirty.insert(w.key.clone());
                    }
                }
                self.state.apply(version, &tx.rwset.writes);
                self.stats.valid_txs += 1;
            } else {
                match flag {
                    crate::validate::TxValidation::MvccConflict => self.stats.mvcc_conflicts += 1,
                    crate::validate::TxValidation::EndorsementFailure => {
                        self.stats.endorsement_failures += 1
                    }
                    crate::validate::TxValidation::Valid => unreachable!(),
                }
            }
        }
        let block_num = block.number();
        self.blocks.push(block);
        if let Some(policy) = self.snapshot_policy {
            if block_num > 0 && block_num.is_multiple_of(policy.every) {
                self.emit_checkpoint(block_num, policy);
            }
        }
        Ok(CommitSummary {
            block_num,
            validation,
        })
    }

    /// Records the checkpoint for the just-committed `height` and retains
    /// its snapshot artifacts per the policy: under a delta policy a
    /// [`DeltaSnapshot`] of the keys written since the previous checkpoint,
    /// plus a full snapshot at the `full_every` cadence (and always when
    /// there is no prior checkpoint to chain a delta from); under a full
    /// policy a full snapshot at every boundary. Fulls beyond `retain_full`
    /// are pruned, along with the deltas that chained below the oldest
    /// surviving full. The checkpoint log keeps every fingerprint.
    fn emit_checkpoint(&mut self, height: u64, policy: SnapshotPolicy) {
        let checkpoint = Checkpoint {
            height,
            state_hash: self.state.state_hash(),
        };
        let prev = self.checkpoint_log.last().copied();
        self.checkpoint_log.push(checkpoint);
        let mut record = RetentionRecord {
            height,
            full_bytes: 0,
            delta_bytes: 0,
        };
        if policy.delta {
            if let Some(base) = prev {
                let entries: Vec<_> = self
                    .dirty
                    .iter()
                    .filter_map(|k| {
                        let (v, ver) = self.state.get(k)?;
                        Some((k.clone(), v.clone(), ver))
                    })
                    .collect();
                let delta = DeltaSnapshot {
                    base,
                    checkpoint,
                    last_block_hash: self.latest_hash(),
                    entries,
                };
                record.delta_bytes = delta.wire_size() as u64;
                self.deltas.push(delta);
            }
            self.dirty.clear();
        }
        // The height-based full cadence keeps genesis-replay and
        // snapshot-seeded ledgers agreeing on which boundaries carry fulls.
        let full_due = !policy.delta
            || prev.is_none()
            || (height / policy.every).is_multiple_of(policy.full_every);
        if full_due {
            let snapshot = SnapshotRef::new(Snapshot {
                checkpoint,
                last_block_hash: self.latest_hash(),
                entries: self.state.export_entries(),
            });
            record.full_bytes = snapshot.wire_size() as u64;
            self.retained.push(snapshot);
            if self.retained.len() > policy.retain_full {
                self.retained.remove(0);
                let floor = self.retained[0].checkpoint.height;
                self.deltas.retain(|d| d.base.height >= floor);
            }
        }
        self.retention_log.push(record);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabric_types::ids::{ClientId, PeerId, TxId};
    use fabric_types::rwset::RwSet;
    use fabric_types::transaction::Transaction;

    fn ledger() -> Ledger {
        Ledger::new(Arc::new(Msp::single_org(3)), EndorsementPolicy::AnyMember)
    }

    fn endorsed_increment(
        led: &Ledger,
        id: u64,
        key: &str,
        read_version: Option<fabric_types::rwset::Version>,
        value: u64,
    ) -> Transaction {
        let rwset = RwSet::builder()
            .read(key, read_version)
            .write_u64(key, value)
            .build();
        let mut tx = Transaction::new(TxId(id), "increment", ClientId(0), rwset);
        tx.endorse(&led.msp, PeerId(0));
        tx
    }

    #[test]
    fn fresh_ledger_has_genesis() {
        let led = ledger();
        assert_eq!(led.height(), 1);
        assert!(led.contains(0));
        assert!(!led.contains(1));
        assert_eq!(led.block(0).unwrap().number(), 0);
    }

    #[test]
    fn commit_applies_valid_writes_and_advances_state() {
        let mut led = ledger();
        let tx = endorsed_increment(&led, 1, "k", None, 1);
        let block = BlockRef::new(Block::new(1, led.latest_hash(), vec![tx]));
        let summary = led.commit(block).unwrap();
        assert_eq!(summary.block_num, 1);
        assert_eq!(summary.validation.valid_count(), 1);
        assert_eq!(led.height(), 2);
        assert_eq!(led.state().counter_sum(), Some(1));
        assert_eq!(led.stats().valid_txs, 1);
    }

    #[test]
    fn commit_rejects_wrong_height() {
        let mut led = ledger();
        let block = BlockRef::new(Block::new(5, led.latest_hash(), vec![]));
        assert_eq!(
            led.commit(block),
            Err(CommitError::NotNext {
                expected: 1,
                got: 5
            })
        );
        assert_eq!(led.height(), 1);
    }

    #[test]
    fn commit_rejects_broken_link() {
        let mut led = ledger();
        let block = BlockRef::new(Block::new(1, Hash256([9; 32]), vec![]));
        assert_eq!(led.commit(block), Err(CommitError::BrokenLink));
    }

    #[test]
    fn commit_rejects_tampered_data() {
        let mut led = ledger();
        let tx = endorsed_increment(&led, 1, "k", None, 1);
        let mut block = Block::new(1, led.latest_hash(), vec![]);
        block.txs.push(tx); // bypasses data_hash computation
        assert_eq!(
            led.commit(BlockRef::new(block)),
            Err(CommitError::DataTampered)
        );
    }

    #[test]
    fn conflicting_tx_counts_as_mvcc_conflict() {
        let mut led = ledger();
        let tx1 = endorsed_increment(&led, 1, "k", None, 1);
        let tx2 = endorsed_increment(&led, 2, "k", None, 1); // same base read
        let block = BlockRef::new(Block::new(1, led.latest_hash(), vec![tx1, tx2]));
        let summary = led.commit(block).unwrap();
        assert_eq!(summary.validation.mvcc_conflicts(), 1);
        assert_eq!(led.stats().mvcc_conflicts, 1);
        assert_eq!(led.state().counter_sum(), Some(1));
    }

    #[test]
    fn stale_read_across_blocks_conflicts() {
        let mut led = ledger();
        let tx1 = endorsed_increment(&led, 1, "k", None, 1);
        let b1 = BlockRef::new(Block::new(1, led.latest_hash(), vec![tx1]));
        led.commit(b1).unwrap();
        // Endorsed before block 1 committed: still reads version None.
        let tx2 = endorsed_increment(&led, 2, "k", None, 1);
        let b2 = BlockRef::new(Block::new(2, led.latest_hash(), vec![tx2]));
        let summary = led.commit(b2).unwrap();
        assert_eq!(summary.validation.mvcc_conflicts(), 1);
        assert_eq!(led.stats().invalid_txs(), 1);
    }

    fn grow(led: &mut Ledger, from: u64, to: u64) {
        for n in from..=to {
            let tx = endorsed_increment(led, n, "k", led.state().get_version(&"k".into()), n);
            let block = BlockRef::new(Block::new(n, led.latest_hash(), vec![tx]));
            led.commit(block).unwrap();
        }
    }

    #[test]
    fn checkpoints_fire_on_interval_boundaries_only() {
        let mut led = ledger().with_checkpoints(4);
        assert!(led.latest_checkpoint().is_none());
        grow(&mut led, 1, 3);
        assert!(led.latest_checkpoint().is_none(), "below the boundary");
        grow(&mut led, 4, 4);
        let cp = led.latest_checkpoint().unwrap();
        assert_eq!(cp.height, 4);
        assert_eq!(cp.state_hash, led.state().state_hash());
        grow(&mut led, 5, 9);
        assert_eq!(led.latest_checkpoint().unwrap().height, 8);
        assert_eq!(
            led.checkpoints()
                .iter()
                .map(|c| c.height)
                .collect::<Vec<_>>(),
            vec![4, 8]
        );
        let snap = led.snapshot().unwrap();
        assert_eq!(snap.checkpoint.height, 8);
        assert!(snap.verify());
        // Serving is a pointer bump, not a state copy.
        let again = led.snapshot().unwrap();
        assert!(fabric_types::snapshot::SnapshotRef::ptr_eq(&snap, &again));
    }

    /// Commits one uniquely-keyed write per block, so state size grows
    /// with height (the retention-curve shape the churn workload has).
    fn grow_unique(led: &mut Ledger, from: u64, to: u64) {
        for n in from..=to {
            let key = format!("k{n:03}");
            let tx = endorsed_increment(led, n, &key, None, n);
            let block = BlockRef::new(Block::new(n, led.latest_hash(), vec![tx]));
            led.commit(block).unwrap();
        }
    }

    #[test]
    fn retention_keeps_the_last_two_fulls_and_prunes_older_exports() {
        let mut led = ledger().with_checkpoints(2);
        grow_unique(&mut led, 1, 8);
        assert_eq!(
            led.retained_snapshots()
                .iter()
                .map(|s| s.checkpoint.height)
                .collect::<Vec<_>>(),
            vec![6, 8],
            "only the last retain_full=2 exports survive"
        );
        assert_eq!(led.snapshot().unwrap().checkpoint.height, 8);
        assert_eq!(
            led.checkpoints().len(),
            4,
            "the fingerprint log keeps every checkpoint"
        );
        let log = led.retention_log();
        assert_eq!(log.len(), 4);
        assert!(
            log.windows(2).all(|w| w[0].full_bytes < w[1].full_bytes),
            "full-snapshot bytes grow with state size"
        );
        assert!(log.iter().all(|r| r.delta_bytes == 0));
    }

    #[test]
    fn delta_policy_keeps_per_checkpoint_bytes_flat_and_chains_to_fulls() {
        let mut led = ledger().with_snapshot_policy(SnapshotPolicy::delta(2, 2));
        grow_unique(&mut led, 1, 12);
        // Checkpoints at 2..=12; fulls land at the full_every cadence (4, 8,
        // 12) plus the forced first boundary, and retention keeps the last 2.
        assert_eq!(
            led.retained_snapshots()
                .iter()
                .map(|s| s.checkpoint.height)
                .collect::<Vec<_>>(),
            vec![8, 12]
        );
        assert_eq!(
            led.retained_deltas()
                .iter()
                .map(|d| (d.base.height, d.checkpoint.height))
                .collect::<Vec<_>>(),
            vec![(8, 10), (10, 12)],
            "deltas below the oldest surviving full are pruned with it"
        );
        let log = led.retention_log();
        let delta_bytes: Vec<u64> = log
            .iter()
            .map(|r| r.delta_bytes)
            .filter(|b| *b > 0)
            .collect();
        assert_eq!(
            delta_bytes.len(),
            5,
            "one delta per boundary after the first"
        );
        assert!(
            delta_bytes.windows(2).all(|w| w[0] == w[1]),
            "steady write rate keeps the delta curve flat"
        );
        let full_bytes: Vec<u64> = log
            .iter()
            .map(|r| r.full_bytes)
            .filter(|b| *b > 0)
            .collect();
        assert!(
            full_bytes.windows(2).all(|w| w[0] < w[1]),
            "the full curve keeps growing with state size"
        );

        // Delta-chain bootstrap from the oldest retained full lands on the
        // exact state a full-snapshot bootstrap would.
        let base = led.retained_snapshots()[0].clone();
        let joiner = Ledger::from_delta_chain(
            Arc::new(Msp::single_org(3)),
            EndorsementPolicy::AnyMember,
            base.clone(),
            led.retained_deltas(),
            None,
        )
        .unwrap();
        assert_eq!(joiner.base_height(), 13);
        assert_eq!(joiner.state().state_hash(), led.state().state_hash());
        assert_eq!(joiner.latest_hash(), led.latest_hash());

        // A tampered delta breaks the chain link.
        let mut forged = led.retained_deltas().to_vec();
        forged[0].entries[0].1 = fabric_types::rwset::Value::from_u64(777);
        assert_eq!(
            Ledger::from_delta_chain(
                Arc::new(Msp::single_org(3)),
                EndorsementPolicy::AnyMember,
                base,
                &forged,
                None,
            )
            .err(),
            Some(SnapshotError::BrokenDeltaChain)
        );
    }

    #[test]
    fn snapshot_bootstrap_replays_tail_to_identical_state() {
        let mut full = ledger().with_checkpoints(5);
        grow(&mut full, 1, 12);
        let snap = full.snapshot().unwrap();
        assert_eq!(snap.checkpoint.height, 10);

        let mut joiner = Ledger::from_snapshot(
            Arc::new(Msp::single_org(3)),
            EndorsementPolicy::AnyMember,
            snap,
            Some(5),
        )
        .unwrap();
        assert_eq!(joiner.height(), 11, "resumes above the checkpoint");
        assert_eq!(joiner.base_height(), 11);
        assert!(joiner.contains(10), "absorbed blocks count as committed");
        assert!(joiner.block(10).is_none(), "but are not physically held");

        // Replay only the tail: blocks 11 and 12 from the full ledger.
        for n in 11..=12 {
            joiner.commit(full.block(n).unwrap().clone()).unwrap();
        }
        assert_eq!(joiner.height(), full.height());
        assert_eq!(joiner.latest_hash(), full.latest_hash());
        assert_eq!(joiner.state().state_hash(), full.state().state_hash());
        assert_eq!(joiner.state().counter_sum(), full.state().counter_sum());
        assert_eq!(joiner.blocks().len(), 2, "O(tail), not O(chain)");
    }

    #[test]
    fn snapshot_ledger_rejects_wrong_tail() {
        let mut full = ledger().with_checkpoints(4);
        grow(&mut full, 1, 6);
        let snap = full.snapshot().unwrap();
        let mut joiner = Ledger::from_snapshot(
            Arc::new(Msp::single_org(3)),
            EndorsementPolicy::AnyMember,
            snap,
            None,
        )
        .unwrap();
        // Wrong height and broken link are both caught above the snapshot.
        assert!(matches!(
            joiner.commit(full.block(6).unwrap().clone()),
            Err(CommitError::NotNext {
                expected: 5,
                got: 6
            })
        ));
        let forged = BlockRef::new(Block::new(5, Hash256([9; 32]), vec![]));
        assert_eq!(joiner.commit(forged), Err(CommitError::BrokenLink));
        // The genuine block 5 links to the snapshot's tip hash.
        joiner.commit(full.block(5).unwrap().clone()).unwrap();
        assert_eq!(joiner.height(), 6);
    }

    #[test]
    fn tampered_snapshot_is_rejected() {
        let mut full = ledger().with_checkpoints(2);
        grow(&mut full, 1, 2);
        let snap = full.snapshot().unwrap();
        let mut forged = (*snap).clone();
        forged.entries[0].1 = fabric_types::rwset::Value::from_u64(1_000_000);
        assert_eq!(
            Ledger::from_snapshot(
                Arc::new(Msp::single_org(3)),
                EndorsementPolicy::AnyMember,
                forged.into(),
                None,
            )
            .err(),
            Some(SnapshotError::StateHashMismatch)
        );
    }

    #[test]
    fn chain_of_commits_preserves_linkage() {
        let mut led = ledger();
        for n in 1..=20 {
            let tx = endorsed_increment(&led, n, "k", led.state().get_version(&"k".into()), n);
            let block = BlockRef::new(Block::new(n, led.latest_hash(), vec![tx]));
            led.commit(block).unwrap();
        }
        assert_eq!(led.height(), 21);
        assert_eq!(fabric_types::block::verify_chain(led.blocks()), Ok(()));
        assert_eq!(led.stats().valid_txs, 20);
        assert_eq!(led.state().counter_sum(), Some(20));
    }
}
