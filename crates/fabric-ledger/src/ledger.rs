//! The peer-local ledger: hash-chained block storage plus materialized state.

use std::fmt;
use std::sync::Arc;

use fabric_types::block::{Block, BlockRef};
use fabric_types::crypto::Hash256;
use fabric_types::msp::Msp;
use fabric_types::rwset::Version;
use fabric_types::transaction::EndorsementPolicy;

use crate::state::StateDb;
use crate::validate::{validate_block, BlockValidation};

/// Why a block was rejected at commit time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommitError {
    /// The block's number is not the next height.
    NotNext {
        /// The height the ledger expected.
        expected: u64,
        /// The height the block carries.
        got: u64,
    },
    /// The block's previous-hash link does not match the chain tip.
    BrokenLink,
    /// The block's data hash does not match its transactions.
    DataTampered,
}

impl fmt::Display for CommitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CommitError::NotNext { expected, got } => {
                write!(
                    f,
                    "block {got} is not the next height (expected {expected})"
                )
            }
            CommitError::BrokenLink => write!(f, "previous-hash link does not match chain tip"),
            CommitError::DataTampered => write!(f, "data hash does not match transactions"),
        }
    }
}

impl std::error::Error for CommitError {}

/// Summary of one committed block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommitSummary {
    /// Height of the committed block.
    pub block_num: u64,
    /// Per-transaction validation outcome.
    pub validation: BlockValidation,
}

/// Cumulative validation statistics across all committed blocks.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LedgerStats {
    /// Transactions whose writes were applied.
    pub valid_txs: u64,
    /// Transactions invalidated by an MVCC (validation-time) conflict.
    pub mvcc_conflicts: u64,
    /// Transactions invalidated by an endorsement-policy failure.
    pub endorsement_failures: u64,
}

impl LedgerStats {
    /// Total invalidated transactions.
    pub fn invalid_txs(&self) -> u64 {
        self.mvcc_conflicts + self.endorsement_failures
    }
}

/// A peer's copy of the blockchain and its world state.
///
/// Blocks must be committed in height order; out-of-order delivery is the
/// gossip layer's problem (its payload buffer reorders). The genesis block
/// is implicit: a fresh ledger has height 1 in the sense that block number 1
/// is the next expected block, with the genesis block pre-committed.
///
/// ```
/// use std::sync::Arc;
/// use fabric_ledger::ledger::Ledger;
/// use fabric_types::block::Block;
/// use fabric_types::msp::Msp;
/// use fabric_types::transaction::EndorsementPolicy;
///
/// let mut ledger = Ledger::new(Arc::new(Msp::single_org(3)), EndorsementPolicy::AnyMember);
/// let next = Block::new(1, ledger.latest_hash(), vec![]);
/// ledger.commit(next.into()).unwrap();
/// assert_eq!(ledger.height(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct Ledger {
    msp: Arc<Msp>,
    policy: EndorsementPolicy,
    blocks: Vec<BlockRef>,
    state: StateDb,
    stats: LedgerStats,
}

impl Ledger {
    /// Creates a ledger holding only the genesis block.
    pub fn new(msp: Arc<Msp>, policy: EndorsementPolicy) -> Self {
        Ledger {
            msp,
            policy,
            blocks: vec![BlockRef::new(Block::genesis())],
            state: StateDb::new(),
            stats: LedgerStats::default(),
        }
    }

    /// Chain height: number of blocks committed, genesis included.
    pub fn height(&self) -> u64 {
        self.blocks.len() as u64
    }

    /// Hash of the chain tip.
    pub fn latest_hash(&self) -> Hash256 {
        self.blocks
            .last()
            .expect("ledger always holds genesis")
            .hash()
    }

    /// The block at height `number`, if committed.
    pub fn block(&self, number: u64) -> Option<&BlockRef> {
        self.blocks.get(number as usize)
    }

    /// Whether the block at height `number` is committed.
    pub fn contains(&self, number: u64) -> bool {
        (number as usize) < self.blocks.len()
    }

    /// All committed blocks in height order.
    pub fn blocks(&self) -> &[BlockRef] {
        &self.blocks
    }

    /// The materialized world state.
    pub fn state(&self) -> &StateDb {
        &self.state
    }

    /// Cumulative validation statistics.
    pub fn stats(&self) -> LedgerStats {
        self.stats
    }

    /// Validates and commits the next block: checks chain linkage and data
    /// integrity, runs endorsement-policy and MVCC validation, applies the
    /// writes of valid transactions.
    ///
    /// # Errors
    ///
    /// Returns a [`CommitError`] without mutating anything when the block is
    /// not the next height, does not link to the tip, or is corrupted.
    pub fn commit(&mut self, block: BlockRef) -> Result<CommitSummary, CommitError> {
        let expected = self.height();
        if block.number() != expected {
            return Err(CommitError::NotNext {
                expected,
                got: block.number(),
            });
        }
        if block.header.prev_hash != self.latest_hash() {
            return Err(CommitError::BrokenLink);
        }
        if !block.data_intact() {
            return Err(CommitError::DataTampered);
        }
        let validation = validate_block(&self.msp, &self.policy, &block, &self.state);
        for (tx_num, (tx, flag)) in block.txs.iter().zip(validation.flags.iter()).enumerate() {
            if flag.is_valid() {
                let version = Version::new(block.number(), tx_num as u32);
                self.state.apply(version, &tx.rwset.writes);
                self.stats.valid_txs += 1;
            } else {
                match flag {
                    crate::validate::TxValidation::MvccConflict => self.stats.mvcc_conflicts += 1,
                    crate::validate::TxValidation::EndorsementFailure => {
                        self.stats.endorsement_failures += 1
                    }
                    crate::validate::TxValidation::Valid => unreachable!(),
                }
            }
        }
        let block_num = block.number();
        self.blocks.push(block);
        Ok(CommitSummary {
            block_num,
            validation,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::StateReader;
    use fabric_types::ids::{ClientId, PeerId, TxId};
    use fabric_types::rwset::RwSet;
    use fabric_types::transaction::Transaction;

    fn ledger() -> Ledger {
        Ledger::new(Arc::new(Msp::single_org(3)), EndorsementPolicy::AnyMember)
    }

    fn endorsed_increment(
        led: &Ledger,
        id: u64,
        key: &str,
        read_version: Option<fabric_types::rwset::Version>,
        value: u64,
    ) -> Transaction {
        let rwset = RwSet::builder()
            .read(key, read_version)
            .write_u64(key, value)
            .build();
        let mut tx = Transaction::new(TxId(id), "increment", ClientId(0), rwset);
        tx.endorse(&led.msp, PeerId(0));
        tx
    }

    #[test]
    fn fresh_ledger_has_genesis() {
        let led = ledger();
        assert_eq!(led.height(), 1);
        assert!(led.contains(0));
        assert!(!led.contains(1));
        assert_eq!(led.block(0).unwrap().number(), 0);
    }

    #[test]
    fn commit_applies_valid_writes_and_advances_state() {
        let mut led = ledger();
        let tx = endorsed_increment(&led, 1, "k", None, 1);
        let block = BlockRef::new(Block::new(1, led.latest_hash(), vec![tx]));
        let summary = led.commit(block).unwrap();
        assert_eq!(summary.block_num, 1);
        assert_eq!(summary.validation.valid_count(), 1);
        assert_eq!(led.height(), 2);
        assert_eq!(led.state().counter_sum(), Some(1));
        assert_eq!(led.stats().valid_txs, 1);
    }

    #[test]
    fn commit_rejects_wrong_height() {
        let mut led = ledger();
        let block = BlockRef::new(Block::new(5, led.latest_hash(), vec![]));
        assert_eq!(
            led.commit(block),
            Err(CommitError::NotNext {
                expected: 1,
                got: 5
            })
        );
        assert_eq!(led.height(), 1);
    }

    #[test]
    fn commit_rejects_broken_link() {
        let mut led = ledger();
        let block = BlockRef::new(Block::new(1, Hash256([9; 32]), vec![]));
        assert_eq!(led.commit(block), Err(CommitError::BrokenLink));
    }

    #[test]
    fn commit_rejects_tampered_data() {
        let mut led = ledger();
        let tx = endorsed_increment(&led, 1, "k", None, 1);
        let mut block = Block::new(1, led.latest_hash(), vec![]);
        block.txs.push(tx); // bypasses data_hash computation
        assert_eq!(
            led.commit(BlockRef::new(block)),
            Err(CommitError::DataTampered)
        );
    }

    #[test]
    fn conflicting_tx_counts_as_mvcc_conflict() {
        let mut led = ledger();
        let tx1 = endorsed_increment(&led, 1, "k", None, 1);
        let tx2 = endorsed_increment(&led, 2, "k", None, 1); // same base read
        let block = BlockRef::new(Block::new(1, led.latest_hash(), vec![tx1, tx2]));
        let summary = led.commit(block).unwrap();
        assert_eq!(summary.validation.mvcc_conflicts(), 1);
        assert_eq!(led.stats().mvcc_conflicts, 1);
        assert_eq!(led.state().counter_sum(), Some(1));
    }

    #[test]
    fn stale_read_across_blocks_conflicts() {
        let mut led = ledger();
        let tx1 = endorsed_increment(&led, 1, "k", None, 1);
        let b1 = BlockRef::new(Block::new(1, led.latest_hash(), vec![tx1]));
        led.commit(b1).unwrap();
        // Endorsed before block 1 committed: still reads version None.
        let tx2 = endorsed_increment(&led, 2, "k", None, 1);
        let b2 = BlockRef::new(Block::new(2, led.latest_hash(), vec![tx2]));
        let summary = led.commit(b2).unwrap();
        assert_eq!(summary.validation.mvcc_conflicts(), 1);
        assert_eq!(led.stats().invalid_txs(), 1);
    }

    #[test]
    fn chain_of_commits_preserves_linkage() {
        let mut led = ledger();
        for n in 1..=20 {
            let tx = endorsed_increment(&led, n, "k", led.state().get_version(&"k".into()), n);
            let block = BlockRef::new(Block::new(n, led.latest_hash(), vec![tx]));
            led.commit(block).unwrap();
        }
        assert_eq!(led.height(), 21);
        assert_eq!(fabric_types::block::verify_chain(led.blocks()), Ok(()));
        assert_eq!(led.stats().valid_txs, 20);
        assert_eq!(led.state().counter_sum(), Some(20));
    }
}
