//! Block validation: endorsement-policy and MVCC read-set checks.
//!
//! Fabric validates every transaction of a newly delivered block in order.
//! A transaction is valid when (a) its endorsements satisfy the channel's
//! endorsement policy and (b) every key it read still carries the version it
//! observed — taking into account the writes of *earlier valid transactions
//! in the same block* (Fabric's earliest-writer-wins rule). Invalid
//! transactions stay in the block but have no effect on state.

use std::collections::HashMap;

use fabric_types::block::Block;
use fabric_types::msp::Msp;
use fabric_types::rwset::{Key, Version};
use fabric_types::transaction::{EndorsementPolicy, Transaction};

use crate::state::{StateDb, StateReader};

/// The outcome of validating one transaction, mirroring Fabric's
/// `TxValidationCode` values relevant to this study.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TxValidation {
    /// The transaction is valid; its writes are applied.
    Valid,
    /// A read version no longer matches committed state (validation-time
    /// conflict — the quantity Table II counts).
    MvccConflict,
    /// The endorsements do not satisfy the policy.
    EndorsementFailure,
}

impl TxValidation {
    /// Whether the transaction's writes get applied.
    pub fn is_valid(self) -> bool {
        self == TxValidation::Valid
    }
}

/// Per-block validation outcome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockValidation {
    /// Validation flag per transaction, in block order.
    pub flags: Vec<TxValidation>,
}

impl BlockValidation {
    /// Number of valid transactions.
    pub fn valid_count(&self) -> usize {
        self.flags.iter().filter(|f| f.is_valid()).count()
    }

    /// Number of invalidated transactions (any reason).
    pub fn invalid_count(&self) -> usize {
        self.flags.len() - self.valid_count()
    }

    /// Number of MVCC (validation-time) conflicts.
    pub fn mvcc_conflicts(&self) -> usize {
        self.flags
            .iter()
            .filter(|f| **f == TxValidation::MvccConflict)
            .count()
    }
}

/// Validates `block` against `state`, without mutating it.
///
/// The caller applies the writes of valid transactions afterwards (see
/// [`crate::ledger::Ledger::commit`]); keeping validation pure makes it
/// directly testable and lets the simulation account validation CPU cost
/// separately.
pub fn validate_block(
    msp: &Msp,
    policy: &EndorsementPolicy,
    block: &Block,
    state: &StateDb,
) -> BlockValidation {
    // Versions written by earlier *valid* transactions of this block.
    let mut overlay: HashMap<&Key, Version> = HashMap::new();
    let mut flags = Vec::with_capacity(block.txs.len());
    for (tx_num, tx) in block.txs.iter().enumerate() {
        let flag = validate_tx(msp, policy, tx, state, &overlay);
        if flag.is_valid() {
            let version = Version::new(block.number(), tx_num as u32);
            for w in &tx.rwset.writes {
                overlay.insert(&w.key, version);
            }
        }
        flags.push(flag);
    }
    BlockValidation { flags }
}

fn validate_tx(
    msp: &Msp,
    policy: &EndorsementPolicy,
    tx: &Transaction,
    state: &StateDb,
    overlay: &HashMap<&Key, Version>,
) -> TxValidation {
    if !policy.is_satisfied(msp, &tx.digest(), &tx.endorsements) {
        return TxValidation::EndorsementFailure;
    }
    for read in &tx.rwset.reads {
        let current = overlay
            .get(&read.key)
            .copied()
            .or_else(|| state.get_version(&read.key));
        if current != read.version {
            return TxValidation::MvccConflict;
        }
    }
    TxValidation::Valid
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabric_types::block::Block;
    use fabric_types::crypto::Hash256;
    use fabric_types::ids::{ClientId, PeerId, TxId};
    use fabric_types::rwset::{RwSet, Value, WriteItem};

    fn setup() -> (Msp, EndorsementPolicy, StateDb) {
        let msp = Msp::single_org(4);
        let policy = EndorsementPolicy::AnyMember;
        let mut state = StateDb::new();
        state.apply(
            Version::new(1, 0),
            &[WriteItem {
                key: Key::from("k"),
                value: Value::from_u64(0),
            }],
        );
        (msp, policy, state)
    }

    fn increment_tx(
        msp: &Msp,
        id: u64,
        read_version: Option<Version>,
        new_value: u64,
    ) -> Transaction {
        let rwset = RwSet::builder()
            .read("k", read_version)
            .write_u64("k", new_value)
            .build();
        let mut tx = Transaction::new(TxId(id), "increment", ClientId(0), rwset);
        tx.endorse(msp, PeerId(1));
        tx
    }

    #[test]
    fn fresh_read_validates() {
        let (msp, policy, state) = setup();
        let tx = increment_tx(&msp, 1, Some(Version::new(1, 0)), 1);
        let block = Block::new(2, Hash256::ZERO, vec![tx]);
        let v = validate_block(&msp, &policy, &block, &state);
        assert_eq!(v.flags, vec![TxValidation::Valid]);
        assert_eq!(v.valid_count(), 1);
        assert_eq!(v.mvcc_conflicts(), 0);
    }

    #[test]
    fn stale_read_is_mvcc_conflict() {
        let (msp, policy, mut state) = setup();
        // Another write bumped k to version (2, 0) after the endorsement.
        state.apply(
            Version::new(2, 0),
            &[WriteItem {
                key: Key::from("k"),
                value: Value::from_u64(5),
            }],
        );
        let tx = increment_tx(&msp, 1, Some(Version::new(1, 0)), 1);
        let block = Block::new(3, Hash256::ZERO, vec![tx]);
        let v = validate_block(&msp, &policy, &block, &state);
        assert_eq!(v.flags, vec![TxValidation::MvccConflict]);
        assert_eq!(v.invalid_count(), 1);
    }

    #[test]
    fn earliest_writer_wins_inside_a_block() {
        let (msp, policy, state) = setup();
        // Both transactions read version (1,0) of k; the first commits, the
        // second must conflict with the first one's in-block write.
        let tx1 = increment_tx(&msp, 1, Some(Version::new(1, 0)), 1);
        let tx2 = increment_tx(&msp, 2, Some(Version::new(1, 0)), 1);
        let block = Block::new(2, Hash256::ZERO, vec![tx1, tx2]);
        let v = validate_block(&msp, &policy, &block, &state);
        assert_eq!(
            v.flags,
            vec![TxValidation::Valid, TxValidation::MvccConflict]
        );
        assert_eq!(v.mvcc_conflicts(), 1);
    }

    #[test]
    fn invalid_tx_writes_do_not_shadow_state() {
        let (msp, policy, state) = setup();
        // tx1 conflicts (stale read of a version that never existed); tx2
        // reads the committed version and must remain valid.
        let tx1 = increment_tx(&msp, 1, Some(Version::new(0, 0)), 1);
        let tx2 = increment_tx(&msp, 2, Some(Version::new(1, 0)), 1);
        let block = Block::new(2, Hash256::ZERO, vec![tx1, tx2]);
        let v = validate_block(&msp, &policy, &block, &state);
        assert_eq!(
            v.flags,
            vec![TxValidation::MvccConflict, TxValidation::Valid]
        );
    }

    #[test]
    fn missing_endorsement_fails_policy() {
        let (msp, policy, state) = setup();
        let rwset = RwSet::builder()
            .read("k", Some(Version::new(1, 0)))
            .write_u64("k", 1)
            .build();
        let tx = Transaction::new(TxId(1), "increment", ClientId(0), rwset);
        let block = Block::new(2, Hash256::ZERO, vec![tx]);
        let v = validate_block(&msp, &policy, &block, &state);
        assert_eq!(v.flags, vec![TxValidation::EndorsementFailure]);
    }

    #[test]
    fn read_of_absent_key_matches_none_version() {
        let (msp, policy, state) = setup();
        let rwset = RwSet::builder()
            .read("new-key", None)
            .write_u64("new-key", 1)
            .build();
        let mut tx = Transaction::new(TxId(9), "create", ClientId(0), rwset);
        tx.endorse(&msp, PeerId(0));
        let block = Block::new(2, Hash256::ZERO, vec![tx]);
        let v = validate_block(&msp, &policy, &block, &state);
        assert_eq!(v.flags, vec![TxValidation::Valid]);
    }

    #[test]
    fn two_creates_of_same_key_conflict_in_block() {
        let (msp, policy, state) = setup();
        let make = |id: u64| {
            let rwset = RwSet::builder()
                .read("fresh", None)
                .write_u64("fresh", 1)
                .build();
            let mut tx = Transaction::new(TxId(id), "create", ClientId(0), rwset);
            tx.endorse(&msp, PeerId(0));
            tx
        };
        let block = Block::new(2, Hash256::ZERO, vec![make(1), make(2)]);
        let v = validate_block(&msp, &policy, &block, &state);
        assert_eq!(
            v.flags,
            vec![TxValidation::Valid, TxValidation::MvccConflict]
        );
    }
}
