//! Property: a snapshot-bootstrapped ledger is byte-identical to a
//! genesis-replay ledger.
//!
//! For arbitrary chain heights and checkpoint cadences, grow a full
//! ledger from genesis, take its freshest snapshot, stand a joiner up
//! from it and replay only the tail. The joiner must reach the same
//! height, the same head hash and a byte-identical state hash while
//! physically holding only `height - checkpoint.height` blocks — the
//! O(tail) claim at the ledger layer.

use std::sync::Arc;

use fabric_ledger::ledger::Ledger;
use fabric_ledger::state::StateReader;
use fabric_types::block::{Block, BlockRef};
use fabric_types::ids::{ClientId, PeerId, TxId};
use fabric_types::msp::Msp;
use fabric_types::rwset::RwSet;
use fabric_types::transaction::{EndorsementPolicy, Transaction};
use proptest::prelude::*;

fn msp() -> Arc<Msp> {
    Arc::new(Msp::single_org(3))
}

fn endorsed_write(msp: &Msp, led: &Ledger, id: u64, key: &str, value: u64) -> Transaction {
    let rwset = RwSet::builder()
        .read(key, led.state().get_version(&key.into()))
        .write_u64(key, value)
        .build();
    let mut tx = Transaction::new(TxId(id), "increment", ClientId(0), rwset);
    tx.endorse(msp, PeerId(0));
    tx
}

/// Commits blocks `from..=to`, spreading writes over `keys` keys so the
/// state the snapshot captures has more than one entry.
fn grow(msp: &Msp, led: &mut Ledger, from: u64, to: u64, keys: u64, salt: u64) {
    for n in from..=to {
        let key = format!("k{}", n % keys);
        let tx = endorsed_write(msp, led, n, &key, n.wrapping_mul(31).wrapping_add(salt));
        let block = BlockRef::new(Block::new(n, led.latest_hash(), vec![tx]));
        led.commit(block).expect("endorsed write commits cleanly");
    }
}

proptest! {
    #[test]
    fn snapshot_bootstrap_matches_genesis_replay(
        height in 1u64..61,
        every in 1u64..17,
        keys in 1u64..6,
        salt in 0u64..1_000,
    ) {
        let msp = msp();
        let mut full =
            Ledger::new(msp.clone(), EndorsementPolicy::AnyMember).with_checkpoints(every);
        grow(&msp, &mut full, 1, height, keys, salt);

        let Some(snapshot) = full.snapshot() else {
            // Below the first boundary there is nothing to bootstrap from.
            prop_assert!(height < every);
            prop_assert!(full.latest_checkpoint().is_none());
            return Ok(());
        };
        let floor = snapshot.checkpoint.height;
        prop_assert_eq!(floor, (height / every) * every, "freshest boundary serves");

        let mut joiner =
            Ledger::from_snapshot(msp.clone(), EndorsementPolicy::AnyMember, snapshot, Some(every))
                .expect("a snapshot the full ledger served must verify");
        prop_assert_eq!(joiner.height(), floor + 1);
        for n in (floor + 1)..=height {
            let block = full.block(n).expect("the full ledger holds its whole chain");
            joiner.commit(block.clone()).expect("tail replay commits cleanly");
        }

        // Byte-identical convergence...
        prop_assert_eq!(joiner.height(), full.height());
        prop_assert_eq!(joiner.latest_hash(), full.latest_hash());
        prop_assert_eq!(joiner.state().state_hash(), full.state().state_hash());
        // ...with every checkpoint emitted past the installed one agreeing
        // with the replayer's log at the same height...
        for cp in joiner.checkpoints() {
            prop_assert!(
                full.checkpoints().contains(cp),
                "checkpoint at height {} diverged",
                cp.height
            );
        }
        // ...while physically holding only the tail.
        prop_assert_eq!(joiner.blocks().len() as u64, height - floor);
        prop_assert_eq!(joiner.base_height(), floor + 1);
        prop_assert!(joiner.block(floor).is_none(), "absorbed blocks are not held");
    }
}
