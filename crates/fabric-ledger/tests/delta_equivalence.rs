//! Property: a delta-chain bootstrap is byte-identical to a full-snapshot
//! bootstrap.
//!
//! For arbitrary chain heights, checkpoint cadences and full-export
//! cadences, grow a ledger under the delta retention policy, stand one
//! joiner up from its freshest *full* snapshot and another from the
//! oldest retained full plus the delta chain on top of it, and replay the
//! same tail into both. The delta-chain joiner must reach the same
//! height, head hash and byte-identical state hash — deltas are a pure
//! retention optimization, never a semantic fork.

use std::sync::Arc;

use fabric_ledger::ledger::{Ledger, SnapshotPolicy};
use fabric_ledger::state::StateReader;
use fabric_types::block::{Block, BlockRef};
use fabric_types::ids::{ClientId, PeerId, TxId};
use fabric_types::msp::Msp;
use fabric_types::rwset::RwSet;
use fabric_types::transaction::{EndorsementPolicy, Transaction};
use proptest::prelude::*;

fn msp() -> Arc<Msp> {
    Arc::new(Msp::single_org(3))
}

fn endorsed_write(msp: &Msp, led: &Ledger, id: u64, key: &str, value: u64) -> Transaction {
    let rwset = RwSet::builder()
        .read(key, led.state().get_version(&key.into()))
        .write_u64(key, value)
        .build();
    let mut tx = Transaction::new(TxId(id), "increment", ClientId(0), rwset);
    tx.endorse(msp, PeerId(0));
    tx
}

/// Commits blocks `from..=to`, spreading writes over `keys` keys so the
/// delta entries overlap and supersede each other across boundaries.
fn grow(msp: &Msp, led: &mut Ledger, from: u64, to: u64, keys: u64, salt: u64) {
    for n in from..=to {
        let key = format!("k{}", n % keys);
        let tx = endorsed_write(msp, led, n, &key, n.wrapping_mul(31).wrapping_add(salt));
        let block = BlockRef::new(Block::new(n, led.latest_hash(), vec![tx]));
        led.commit(block).expect("endorsed write commits cleanly");
    }
}

proptest! {
    #[test]
    fn delta_chain_bootstrap_matches_full_snapshot_bootstrap(
        height in 1u64..61,
        every in 1u64..13,
        full_every in 1u64..5,
        salt in 0u64..1_000,
    ) {
        // The vendored proptest derives strategies for up to 4-tuples;
        // the key spread rides on the salt.
        let keys = salt % 5 + 1;
        let msp = msp();
        let policy = SnapshotPolicy::delta(every, full_every);
        let mut full = Ledger::new(msp.clone(), EndorsementPolicy::AnyMember)
            .with_snapshot_policy(policy);
        grow(&msp, &mut full, 1, height, keys, salt);

        let Some(freshest) = full.snapshot() else {
            // No full export was cut yet: nothing to bootstrap from.
            prop_assert!(full.retained_deltas().is_empty() || height < every * 2);
            return Ok(());
        };
        let floor = freshest.checkpoint.height;

        // Joiner A: the freshest full snapshot, the whole-export path.
        let mut direct = Ledger::from_snapshot_with_policy(
            msp.clone(),
            EndorsementPolicy::AnyMember,
            freshest.clone(),
            Some(policy),
        )
        .expect("a retained full snapshot must verify");

        // Joiner B: the oldest retained full plus every delta chaining up
        // to the same checkpoint — what a retention-lean server would
        // hand out instead of a monolithic fresh export.
        let base = full.retained_snapshots()[0].clone();
        let deltas: Vec<_> = full
            .retained_deltas()
            .iter()
            .filter(|d| d.base.height >= base.checkpoint.height && d.checkpoint.height <= floor)
            .cloned()
            .collect();
        let mut chained = Ledger::from_delta_chain(
            msp.clone(),
            EndorsementPolicy::AnyMember,
            base.clone(),
            &deltas,
            Some(policy),
        )
        .expect("the retained delta chain must verify link by link");
        prop_assert_eq!(chained.height(), floor + 1, "the chain ends at the freshest full");
        prop_assert_eq!(chained.height(), direct.height());

        // Replay the same tail into both.
        for n in (floor + 1)..=height {
            let block = full.block(n).expect("the full ledger holds its whole chain");
            direct.commit(block.clone()).expect("tail replay commits cleanly");
            chained.commit(block.clone()).expect("tail replay commits cleanly");
        }

        // Byte-identical convergence of all three ledgers.
        prop_assert_eq!(chained.height(), full.height());
        prop_assert_eq!(chained.latest_hash(), full.latest_hash());
        prop_assert_eq!(direct.state().state_hash(), full.state().state_hash());
        prop_assert_eq!(
            chained.state().state_hash(),
            full.state().state_hash(),
            "a delta-chain bootstrap must be byte-identical to the full export"
        );
        // Checkpoints emitted past the install agree with the replayer —
        // the full-boundary cadence is height-based, so bootstrap modes
        // can't drift.
        for cp in chained.checkpoints() {
            prop_assert!(
                full.checkpoints().contains(cp),
                "checkpoint at height {} diverged",
                cp.height
            );
        }

        // A tampered link must break the chain, not corrupt the state.
        if let Some(first) = deltas.first() {
            let mut forged = deltas.clone();
            let mut bad = first.clone();
            bad.base.height += 1; // no longer links to the base checkpoint
            forged[0] = bad;
            prop_assert!(
                Ledger::from_delta_chain(
                    msp.clone(),
                    EndorsementPolicy::AnyMember,
                    base,
                    &forged,
                    Some(policy),
                )
                .is_err(),
                "a broken delta link must be rejected"
            );
        }
    }
}
