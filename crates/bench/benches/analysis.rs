//! §IV's infect-and-die claim and the appendix's analytics: regenerates
//! the numbers and times the analytic kernels.

use criterion::{criterion_group, criterion_main, Criterion};
use gossip_analysis::coverage::{infect_and_die_stats, infect_upon_contagion_miss_rate};
use gossip_analysis::epidemic::{
    carrying_capacity, expected_digests, imperfect_dissemination_probability,
};
use gossip_analysis::lambert::lambert_w0;
use gossip_analysis::ttl::{ttl_for, TtlTable};
use std::hint::black_box;

fn regenerate() {
    println!("== Section IV: infect-and-die (n=100, fout=3) ==");
    let stats = infect_and_die_stats(100, 3, 10_000, 42);
    println!(
        "mean {:.1} peers (paper 94) | std {:.2} (paper 2.6) | {:.0} transmissions (paper 282) | miss rate {:.3}\n",
        stats.mean, stats.std_dev, stats.mean_transmissions, stats.miss_fraction
    );

    println!("== Appendix: p_e bounds at n=100 ==");
    for (fout, ttl) in [(4u32, 9u32), (2, 19), (4, 12)] {
        let pe = imperfect_dissemination_probability(100.0, f64::from(fout), ttl);
        println!("fout={fout} TTL={ttl}: p_e <= {pe:.3e}");
    }
    let mc = infect_upon_contagion_miss_rate(100, 4, 5, 20_000, 7);
    let bound = imperfect_dissemination_probability(100.0, 4.0, 5);
    println!("Monte-Carlo cross-check (fout=4, TTL=5): measured {mc:.4} vs bound {bound:.4}\n");

    println!("== Appendix: carrying capacity γ/n ==");
    for f in [2.0, 3.0, 4.0, 6.0] {
        println!("fout={f}: γ/n = {:.4}", carrying_capacity(100.0, f) / 100.0);
    }
    println!();

    println!("== TTL lookup table (p_e = 1e-6) ==");
    let table = TtlTable::build(4, 1e-6, TtlTable::default_grid());
    for (n, ttl) in table.entries() {
        println!("n <= {n}: TTL = {ttl}");
    }
    println!();
}

fn bench_analysis(c: &mut Criterion) {
    regenerate();

    c.bench_function("lambert_w0", |b| {
        b.iter(|| lambert_w0(black_box(-4.0 * (-4.0f64).exp())))
    });
    c.bench_function("pe_bound_n100_f4_ttl9", |b| {
        b.iter(|| imperfect_dissemination_probability(black_box(100.0), 4.0, 9))
    });
    c.bench_function("expected_digests_n1000", |b| {
        b.iter(|| expected_digests(black_box(1000.0), 4.0, 12))
    });
    c.bench_function("ttl_for_n1000", |b| {
        b.iter(|| ttl_for(black_box(1000), 4, 1e-6))
    });
    c.bench_function("infect_and_die_mc_100_trials", |b| {
        b.iter(|| infect_and_die_stats(100, 3, 100, black_box(1)))
    });
}

criterion_group!(benches, bench_analysis);
criterion_main!(benches);
