//! Zero-copy payload vs clone-per-hop baseline on the Fig. 4 dissemination
//! shape (100 peers, fout = 3, ~160 KB blocks of 50 materialized-payload
//! transactions). Identical seeds drive identical event schedules; the
//! only difference is how each hop carries the block.

use bench::zero_copy::{compare, run_flood, FloodConfig, OwnedBlock, SharedBlock};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_zero_copy(c: &mut Criterion) {
    let cfg = FloodConfig::fig04(20);

    let (owned, shared) = compare(cfg, 3);
    let speedup = owned.as_secs_f64() / shared.as_secs_f64().max(1e-9);
    println!(
        "== zero-copy vs clone-per-hop (fig04 shape, {} blocks x {} peers) ==",
        cfg.blocks, cfg.peers
    );
    println!("clone-per-hop baseline: {owned:?}");
    println!("zero-copy BlockRef:     {shared:?}");
    println!("speedup: {speedup:.2}x");

    let mut group = c.benchmark_group("zero_copy");
    group.sample_size(10);
    group.bench_function("clone_per_hop_fig04", |b| {
        b.iter(|| run_flood::<OwnedBlock>(cfg))
    });
    group.bench_function("shared_blockref_fig04", |b| {
        b.iter(|| run_flood::<SharedBlock>(cfg))
    });
    group.finish();
}

criterion_group!(benches, bench_zero_copy);
criterion_main!(benches);
