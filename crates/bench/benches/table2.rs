//! Table II: invalidated transactions under different block periods,
//! original vs enhanced gossip. Regenerates the table at `quick` scale
//! (set `REPRO_SCALE=full` for the paper's 100×100 workload with five
//! repetitions) and times one smoke-scale conflict run.

use bench::Scale;
use criterion::{criterion_group, criterion_main, Criterion};
use desim::Duration;
use fabric_experiments::conflicts::{run_conflicts, run_table2, ConflictConfig};
use fabric_experiments::report::render_table2;
use fabric_gossip::config::GossipConfig;

fn print_scale() -> Scale {
    std::env::var("REPRO_SCALE")
        .ok()
        .and_then(|s| Scale::parse(&s))
        .unwrap_or(Scale::Quick)
}

fn regenerate() {
    let scale = print_scale();
    let (keys, rounds, reps) = scale.table2_shape();
    let template = ConflictConfig::paper(GossipConfig::enhanced_f4(), Duration::from_secs(2))
        .scaled(keys, rounds);
    let periods = [
        Duration::from_secs(2),
        Duration::from_millis(1500),
        Duration::from_secs(1),
        Duration::from_millis(750),
    ];
    let rows = run_table2(&template, &periods, reps);
    println!("== Table II ({keys} keys x {rounds} rounds, {reps} run(s) averaged) ==");
    println!("{}", render_table2(&rows));
    println!(
        "paper (100x100, 5 runs): 803/664 (-17%), 814/653 (-20%), 763/564 (-26%), 823/527 (-36%)\n"
    );
}

fn bench_table2(c: &mut Criterion) {
    regenerate();

    let mut group = c.benchmark_group("conflicts");
    group.sample_size(10);
    let (keys, rounds, _) = Scale::Smoke.table2_shape();
    for (name, gossip) in [
        ("original_1s", GossipConfig::original_fabric()),
        ("enhanced_1s", GossipConfig::enhanced_f4()),
    ] {
        let cfg = ConflictConfig::paper(gossip, Duration::from_secs(1)).scaled(keys, rounds);
        group.bench_function(name, |b| {
            b.iter(|| {
                let result = run_conflicts(&cfg);
                assert_eq!(result.issued, (keys * rounds) as u64);
                result.conflicts
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_table2);
criterion_main!(benches);
