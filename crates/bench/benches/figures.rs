//! Figures 4–14: regenerates each figure's series at `quick` scale, then
//! times a smoke-scale dissemination run per configuration so regressions
//! in the simulator or protocol show up in Criterion history.
//!
//! Scale selection: set `REPRO_SCALE=full` to regenerate at the paper's
//! 1 000-block scale (minutes).

use bench::{run_scaled, Scale};
use criterion::{criterion_group, criterion_main, Criterion};
use fabric_experiments::dissemination::{run_dissemination, DisseminationConfig};
use fabric_experiments::report;

fn print_scale() -> Scale {
    std::env::var("REPRO_SCALE")
        .ok()
        .and_then(|s| Scale::parse(&s))
        .unwrap_or(Scale::Quick)
}

fn regenerate_all() {
    let scale = print_scale();
    let figures: [(&str, DisseminationConfig); 5] = [
        (
            "Figs 4/5/6 original",
            DisseminationConfig::fig04_06_original(),
        ),
        (
            "Figs 7/8/9 enhanced f4 TTL9",
            DisseminationConfig::fig07_09_enhanced_f4(),
        ),
        (
            "Fig 10 heavy leader",
            DisseminationConfig::fig10_heavy_leader(),
        ),
        ("Fig 11 no digests", DisseminationConfig::fig11_no_digests()),
        (
            "Figs 12/13/14 enhanced f2 TTL19",
            DisseminationConfig::fig12_14_enhanced_f2(),
        ),
    ];
    for (name, preset) in figures {
        let result = run_scaled(preset, scale);
        println!("{}", report::render_summary(name, &result));
        println!(
            "{}",
            report::render_peer_level(&format!("{name}: peer level"), &result)
        );
        println!(
            "{}",
            report::render_block_level(&format!("{name}: block level"), &result)
        );
        println!(
            "{}",
            report::render_bandwidth(&format!("{name}: bandwidth"), &result)
        );
    }
}

fn bench_figures(c: &mut Criterion) {
    regenerate_all();

    let mut group = c.benchmark_group("dissemination");
    group.sample_size(10);
    let cases: [(&str, DisseminationConfig); 3] = [
        ("fig04_original", DisseminationConfig::fig04_06_original()),
        (
            "fig07_enhanced_f4",
            DisseminationConfig::fig07_09_enhanced_f4(),
        ),
        (
            "fig12_enhanced_f2",
            DisseminationConfig::fig12_14_enhanced_f2(),
        ),
    ];
    for (name, preset) in cases {
        let cfg = preset.scaled(Scale::Smoke.dissemination_txs());
        group.bench_function(name, |b| {
            b.iter(|| {
                let result = run_dissemination(&cfg);
                assert_eq!(result.completeness, 1.0);
                result.blocks
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
