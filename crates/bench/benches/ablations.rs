//! Ablations over the design choices DESIGN.md calls out:
//!
//! * the `t_push = 0` unbiased-randomness rule (§IV: buffering pairs for
//!   10 ms merges their target samples);
//! * `TTL_direct` (how many early rounds push full blocks before switching
//!   to digests);
//! * fan-out (with the TTL the analysis assigns to each fan-out);
//! * the original protocol's pull period (the tail's direct driver).
//!
//! Each sweep prints latency/traffic rows at smoke scale; Criterion times
//! one representative cell per sweep.

use bench::Scale;
use criterion::{criterion_group, criterion_main, Criterion};
use desim::Duration;
use fabric_experiments::dissemination::{run_dissemination, DisseminationConfig};
use fabric_gossip::config::{GossipConfig, PushMode};
use gossip_analysis::ttl::ttl_for;

fn smoke(gossip: GossipConfig) -> DisseminationConfig {
    let mut cfg =
        DisseminationConfig::fig07_09_enhanced_f4().scaled(Scale::Smoke.dissemination_txs() * 2);
    cfg.gossip = gossip;
    cfg
}

fn row(label: &str, cfg: &DisseminationConfig) -> String {
    let res = run_dissemination(cfg);
    let pooled = res.pooled_cdf();
    format!(
        "{label:<28} mean {:>10} p99.9 {:>10} max {:>10} traffic {:>8.1} MB completeness {:.4}",
        pooled.mean().to_string(),
        pooled.quantile(0.999).to_string(),
        pooled.max().to_string(),
        res.peer_traffic_mb,
        res.completeness,
    )
}

fn sweep_tpush() {
    println!("== Ablation: enhanced push buffering (t_push) ==");
    for (label, tpush_ms) in [
        ("t_push = 0 (paper)", 0u64),
        ("t_push = 10 ms (biased)", 10),
    ] {
        let mut gossip = GossipConfig::enhanced_f4();
        if let PushMode::InfectUponContagion { tpush, .. } = &mut gossip.push {
            *tpush = Duration::from_millis(tpush_ms);
        }
        println!("{}", row(label, &smoke(gossip)));
    }
    println!();
}

fn sweep_ttl_direct() {
    println!("== Ablation: TTL_direct (direct-push rounds before digests) ==");
    for ttl_direct in [0u32, 2, 4, 9] {
        let gossip = GossipConfig::enhanced(4, 9, ttl_direct);
        println!(
            "{}",
            row(&format!("TTL_direct = {ttl_direct}"), &smoke(gossip))
        );
    }
    println!();
}

fn sweep_fout() {
    println!("== Ablation: fan-out with analysis-assigned TTL (p_e = 1e-6) ==");
    for fout in [2usize, 3, 4, 6] {
        let ttl = ttl_for(100, fout, 1e-6);
        let ttl_direct = if fout >= 4 { 2 } else { 3 };
        let gossip = GossipConfig::enhanced(fout, ttl, ttl_direct.min(ttl));
        println!(
            "{}",
            row(&format!("fout = {fout} (TTL = {ttl})"), &smoke(gossip))
        );
    }
    println!();
}

fn sweep_pull_period() {
    println!("== Ablation: original gossip pull period (the tail driver) ==");
    for secs in [2u64, 4, 8] {
        let mut gossip = GossipConfig::original_fabric();
        gossip.pull.as_mut().unwrap().tpull = Duration::from_secs(secs);
        println!("{}", row(&format!("t_pull = {secs} s"), &smoke(gossip)));
    }
    println!();
}

fn sweep_free_riders() {
    println!("== Ablation: free-riding peers (receive, never forward) ==");
    for riders_pct in [0usize, 10, 20, 30] {
        let mut cfg = smoke(GossipConfig::enhanced_f4());
        cfg.free_riders = cfg.peers * riders_pct / 100;
        println!("{}", row(&format!("{riders_pct}% free riders"), &cfg));
    }
    println!();
}

fn sweep_orgs() {
    println!("== Ablation: organizations (push confined per org) ==");
    for orgs in [1usize, 2, 4] {
        let mut cfg = smoke(GossipConfig::enhanced_f4());
        cfg.orgs = orgs;
        println!("{}", row(&format!("{orgs} org(s)"), &cfg));
    }
    println!();
}

fn sweep_network_size() {
    println!("== Ablation: organization size (the paper's §VII scaling argument) ==");
    // TTL re-derived per n from the analysis; tail should grow ~log n while
    // per-peer traffic stays flat — "the good properties of epidemic
    // algorithms shine as the number of peers increases".
    for n in [50usize, 100, 200, 400] {
        let ttl = ttl_for(n, 4, 1e-6);
        let mut cfg = smoke(GossipConfig::enhanced(4, ttl, 2));
        cfg.peers = n;
        cfg.network = desim::NetworkConfig::lan(n + 2);
        let res = run_dissemination(&cfg);
        let pooled = res.pooled_cdf();
        println!(
            "n = {n:<4} (TTL {ttl:>2})  mean {:>10}  p99.9 {:>10}  per-peer traffic {:>6.1} MB  completeness {:.4}",
            pooled.mean().to_string(),
            pooled.quantile(0.999).to_string(),
            res.peer_traffic_mb / n as f64,
            res.completeness,
        );
    }
    println!();
}

fn bench_ablations(c: &mut Criterion) {
    sweep_tpush();
    sweep_ttl_direct();
    sweep_fout();
    sweep_pull_period();
    sweep_free_riders();
    sweep_orgs();
    sweep_network_size();

    let mut group = c.benchmark_group("ablations");
    group.sample_size(10);
    let cfg = smoke(GossipConfig::enhanced(2, 19, 3));
    group.bench_function("enhanced_f2_smoke", |b| {
        b.iter(|| run_dissemination(&cfg).blocks)
    });
    group.finish();
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
