//! `tolerance_report` — the quantitative Byzantine-tolerance emitter.
//!
//! Sweeps every attacker family (obituary coalitions, adaptive leader
//! hunters, dissemination-layer withholders and equivocators) across
//! growing attacker counts `f` at each deployment size `N`, under both
//! anti-entropy wire formats, and writes `TOLERANCE_report.json`: the
//! measured `f*(N)` frontier plus the degradation curve below it.
//!
//! ```text
//! tolerance_report [output.json]
//! ```
//!
//! Exits non-zero when any family's measured `f*` falls below the pinned
//! frontier: the sweep is deterministic, so a shrunken bound is a
//! regression, never noise.

use fabric_experiments::tolerance::{render_tolerance, run_tolerance, ToleranceConfig};

/// The pinned frontier: `(family, deployment N, measured f*)`. A change
/// that shrinks any of these bounds fails CI.
const FLOORS: &[(&str, u32, u32)] = &[
    ("obituary-coalition", 6, 3),
    ("adaptive-leader-hunt", 6, 3),
    ("withholder", 6, 3),
    ("equivocator", 6, 3),
    ("obituary-coalition", 9, 6),
    ("adaptive-leader-hunt", 9, 6),
    ("withholder", 9, 6),
    ("equivocator", 9, 6),
];

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "TOLERANCE_report.json".to_owned());

    let full = run_tolerance(&ToleranceConfig::standard());
    eprint!("{}", render_tolerance(&full));
    let mut delta_cfg = ToleranceConfig::standard();
    delta_cfg.mode = "delta";
    delta_cfg.gossip.discovery.delta = true;
    let delta = run_tolerance(&delta_cfg);
    eprint!("{}", render_tolerance(&delta));

    let mut json = String::from("{\n  \"sweeps\": [\n");
    for (i, report) in [&full, &delta].iter().enumerate() {
        // Indent each sweep's own rendering under the wrapper array.
        let body = report
            .to_json()
            .trim_end()
            .lines()
            .map(|l| format!("    {l}"))
            .collect::<Vec<_>>()
            .join("\n");
        json.push_str(&body);
        json.push_str(if i == 0 { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");

    if let Err(e) = std::fs::write(&out_path, json) {
        eprintln!("error: cannot write {out_path}: {e}");
        std::process::exit(1);
    }
    eprintln!("wrote {out_path}");

    if !full.meets_floors(FLOORS) || !delta.meets_floors(FLOORS) {
        eprintln!("::error::tolerance frontier shrank below the pinned f* (see {out_path})");
        std::process::exit(1);
    }
}
