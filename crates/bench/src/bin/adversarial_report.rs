//! `adversarial_report` — the robustness-trajectory emitter.
//!
//! Runs the full Byzantine attacker catalog (stale replay, obituary
//! forgery, selective forwarding, flood amplification, eclipse) under
//! both anti-entropy wire formats and writes
//! `ADVERSARIAL_report.json` next to `BENCH_dissemination.json`, so
//! every change leaves a machine-readable record of which guarantees
//! survive each attacker and what the attacks cost.
//!
//! ```text
//! adversarial_report [output.json]
//! ```
//!
//! Exits non-zero when any guarantee falls: unlike wall-clock perf, a
//! violated robustness guarantee is never noise.

use fabric_experiments::adversarial::{render_adversarial, run_adversarial, AdversarialConfig};

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "ADVERSARIAL_report.json".to_owned());

    let full = run_adversarial(&AdversarialConfig::standard());
    eprint!("{}", render_adversarial(&full));
    let delta = run_adversarial(&AdversarialConfig::standard_delta());
    eprint!("{}", render_adversarial(&delta));

    let mut json = String::from("{\n  \"sweeps\": [\n");
    for (i, report) in [&full, &delta].iter().enumerate() {
        // Indent each sweep's own rendering under the wrapper array.
        let body = report
            .to_json()
            .trim_end()
            .lines()
            .map(|l| format!("    {l}"))
            .collect::<Vec<_>>()
            .join("\n");
        json.push_str(&body);
        json.push_str(if i == 0 { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");

    if let Err(e) = std::fs::write(&out_path, json) {
        eprintln!("error: cannot write {out_path}: {e}");
        std::process::exit(1);
    }
    eprintln!("wrote {out_path}");

    if !full.all_held() || !delta.all_held() {
        eprintln!("::error::adversarial guarantees violated (see {out_path})");
        std::process::exit(1);
    }
}
