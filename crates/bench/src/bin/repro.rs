//! `repro` — regenerate every table and figure of the paper.
//!
//! ```text
//! repro [full|quick|smoke] [figures|table2|analysis|proposal|all]
//! ```
//!
//! Prints the series behind Figures 4–14, Table II, the §IV infect-and-die
//! claim and the appendix's p_e/TTL numbers. `full` matches the paper's
//! scale (1 000 blocks, five Table II repetitions) and takes minutes;
//! `quick` keeps every protocol parameter but shortens the workloads.

use bench::{run_scaled, Scale};
use desim::Duration;
use fabric_experiments::conflicts::{run_table2, ConflictConfig};
use fabric_experiments::dissemination::DisseminationConfig;
use fabric_experiments::report;
use fabric_gossip::config::GossipConfig;
use gossip_analysis::coverage::infect_and_die_stats;
use gossip_analysis::epidemic::imperfect_dissemination_probability;
use gossip_analysis::ttl::TtlTable;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = args
        .first()
        .and_then(|s| Scale::parse(s))
        .unwrap_or(Scale::Quick);
    let what = args.get(1).map(String::as_str).unwrap_or("all");

    println!("# fair-gossip reproduction — scale: {scale:?}, target: {what}\n");
    match what {
        "figures" => figures(scale),
        "table2" => table2(scale),
        "analysis" => analysis(),
        "proposal" => proposal_conflicts(scale),
        _ => {
            analysis();
            figures(scale);
            table2(scale);
            proposal_conflicts(scale);
        }
    }
}

/// Proposal-time conflicts (§II-C): three endorsers, read sets compared at
/// the client. Not a paper table — the paper's Table II isolates
/// validation-time conflicts with one endorser — but the experiment its
/// §II-C analysis implies.
fn proposal_conflicts(scale: Scale) {
    let (keys, rounds, reps) = scale.table2_shape();
    println!(
        "== Proposal-time conflicts (3 endorsers, {keys} keys x {rounds} rounds, {reps} run(s)) =="
    );
    for (label, gossip) in [
        ("original", GossipConfig::original_fabric()),
        ("enhanced", GossipConfig::enhanced_f4()),
    ] {
        let mut proposal = 0u64;
        let mut validation = 0u64;
        for r in 0..reps {
            let mut cfg =
                ConflictConfig::paper(gossip.clone(), Duration::from_secs(1)).scaled(keys, rounds);
            cfg.endorsers = 3;
            cfg.seed = 1 + 1000 * r as u64;
            let res = fabric_experiments::conflicts::run_conflicts(&cfg);
            proposal += res.proposal_conflicts;
            validation += res.conflicts;
        }
        println!(
            "{label:<10} proposal-time {:>7.1}  validation-time {:>7.1}  (avg per run)",
            proposal as f64 / reps as f64,
            validation as f64 / reps as f64,
        );
    }
    println!();
}

fn figures(scale: Scale) {
    let runs: [(&str, &str, DisseminationConfig); 5] = [
        (
            "Figs 4/5/6",
            "original Fabric gossip",
            DisseminationConfig::fig04_06_original(),
        ),
        (
            "Figs 7/8/9",
            "enhanced fout=4 TTL=9",
            DisseminationConfig::fig07_09_enhanced_f4(),
        ),
        (
            "Fig 10",
            "enhanced, f_leader_out = fout = 4",
            DisseminationConfig::fig10_heavy_leader(),
        ),
        (
            "Fig 11",
            "enhanced without digests",
            DisseminationConfig::fig11_no_digests(),
        ),
        (
            "Figs 12/13/14",
            "enhanced fout=2 TTL=19",
            DisseminationConfig::fig12_14_enhanced_f2(),
        ),
    ];
    for (figs, label, preset) in runs {
        let result = run_scaled(preset, scale);
        println!(
            "{}",
            report::render_summary(&format!("{figs} ({label})"), &result)
        );
        println!(
            "{}",
            report::render_peer_level(&format!("{figs}: peer-level latency"), &result)
        );
        println!(
            "{}",
            report::render_block_level(&format!("{figs}: block-level latency"), &result)
        );
        println!(
            "{}",
            report::render_bandwidth(&format!("{figs}: bandwidth"), &result)
        );
    }
}

fn table2(scale: Scale) {
    let (keys, rounds, reps) = scale.table2_shape();
    let template = ConflictConfig::paper(GossipConfig::enhanced_f4(), Duration::from_secs(2))
        .scaled(keys, rounds);
    let periods = [
        Duration::from_secs(2),
        Duration::from_millis(1500),
        Duration::from_secs(1),
        Duration::from_millis(750),
    ];
    let rows = run_table2(&template, &periods, reps);
    println!("== Table II: invalidated transactions ({keys} keys x {rounds} rounds, {reps} run(s) averaged) ==");
    println!("{}", report::render_table2(&rows));
    println!("paper reference (100 x 100, 5 runs): 803/664 (-17%), 814/653 (-20%), 763/564 (-26%), 823/527 (-36%)\n");
}

fn analysis() {
    println!("== Section IV: infect-and-die coverage (n=100, fout=3) ==");
    let stats = infect_and_die_stats(100, 3, 10_000, 42);
    println!(
        "measured: mean {:.1} peers, std {:.2}, {:.0} transmissions | paper: 94, 2.6, 282\n",
        stats.mean, stats.std_dev, stats.mean_transmissions
    );

    println!("== Appendix: imperfect-dissemination probability at n=100 ==");
    for (fout, ttl) in [(4u32, 9u32), (2, 19), (4, 12)] {
        let pe = imperfect_dissemination_probability(100.0, f64::from(fout), ttl);
        println!("fout={fout:<2} TTL={ttl:<3} p_e <= {pe:.3e}");
    }
    println!("paper: (4, 9) and (2, 19) target 1e-6; (4, 12) reaches 1e-12\n");

    println!("== Appendix: TTL lookup table (p_e = 1e-6) ==");
    for fout in [2usize, 3, 4, 6] {
        let table = TtlTable::build(fout, 1e-6, TtlTable::default_grid());
        let row: Vec<String> = table
            .entries()
            .iter()
            .map(|(n, t)| format!("{n}->{t}"))
            .collect();
        println!("fout={fout}: {}", row.join("  "));
    }
    println!();
}
