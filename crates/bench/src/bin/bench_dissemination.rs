//! `bench_dissemination` — the perf-trajectory emitter.
//!
//! Times the fig04 and fig07 dissemination presets (wall-clock and
//! events/second) and the clone-per-hop vs zero-copy payload comparison,
//! then writes `BENCH_dissemination.json` so future changes have a
//! baseline to compare against.
//!
//! ```text
//! bench_dissemination [smoke|quick|full] [output.json]
//! ```

use std::time::Instant;

use bench::zero_copy::{compare, FloodConfig};
use bench::{run_scaled, Scale};
use fabric_experiments::dissemination::DisseminationConfig;

struct PresetRow {
    name: &'static str,
    wall_secs: f64,
    events: u64,
    events_per_sec: f64,
    blocks: u64,
    completeness: f64,
}

fn time_preset(name: &'static str, preset: DisseminationConfig, scale: Scale) -> PresetRow {
    let start = Instant::now();
    let result = run_scaled(preset, scale);
    let wall = start.elapsed().as_secs_f64();
    PresetRow {
        name,
        wall_secs: wall,
        events: result.events,
        events_per_sec: result.events as f64 / wall.max(1e-9),
        blocks: result.blocks,
        completeness: result.completeness,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = args
        .first()
        .and_then(|s| Scale::parse(s))
        .unwrap_or(Scale::Smoke);
    let out_path = args
        .get(1)
        .cloned()
        .unwrap_or_else(|| "BENCH_dissemination.json".to_owned());

    eprintln!("# bench_dissemination — scale {scale:?}");

    let presets = vec![
        time_preset(
            "fig04_06_original",
            DisseminationConfig::fig04_06_original(),
            scale,
        ),
        time_preset(
            "fig07_09_enhanced_f4",
            DisseminationConfig::fig07_09_enhanced_f4(),
            scale,
        ),
    ];
    for row in &presets {
        eprintln!(
            "{:<22} wall {:>8.3} s | {:>9} events | {:>12.0} events/s | {} blocks | completeness {:.4}",
            row.name, row.wall_secs, row.events, row.events_per_sec, row.blocks, row.completeness
        );
    }

    // Zero-copy vs clone-per-hop on the fig04 flood shape.
    let flood = FloodConfig::fig04(20);
    let (owned, shared) = compare(flood, 3);
    let speedup = owned.as_secs_f64() / shared.as_secs_f64().max(1e-9);
    eprintln!(
        "zero-copy speedup over clone-per-hop baseline: {speedup:.2}x (baseline {owned:?}, zero-copy {shared:?})"
    );

    let mut json = String::from("{\n");
    json.push_str(&format!("  \"scale\": \"{scale:?}\",\n"));
    json.push_str("  \"presets\": [\n");
    for (i, row) in presets.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"wall_secs\": {:.6}, \"events\": {}, \"events_per_sec\": {:.1}, \"blocks\": {}, \"completeness\": {:.6}}}{}\n",
            row.name,
            row.wall_secs,
            row.events,
            row.events_per_sec,
            row.blocks,
            row.completeness,
            if i + 1 < presets.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"zero_copy\": {{\"baseline_secs\": {:.6}, \"shared_secs\": {:.6}, \"speedup\": {:.3}, \"peers\": {}, \"blocks\": {}}}\n",
        owned.as_secs_f64(),
        shared.as_secs_f64(),
        speedup,
        flood.peers,
        flood.blocks
    ));
    json.push_str("}\n");

    if let Err(e) = std::fs::write(&out_path, json) {
        eprintln!("error: cannot write {out_path}: {e}");
        std::process::exit(1);
    }
    eprintln!("wrote {out_path}");
}
