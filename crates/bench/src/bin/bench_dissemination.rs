//! `bench_dissemination` — the perf-trajectory emitter.
//!
//! Times the fig04 and fig07 dissemination presets plus the multi-channel,
//! churn and churn-waves presets (wall-clock and events/second), the
//! delta-discovery churn-waves variant (with its discovery byte share),
//! the `large` cross-core sharded preset (with its shard count), the
//! `scheduler` microbench (seed-style binary heap vs timing wheel), the
//! `sampling` microbench (scalar vs batched latency draws) and the
//! clone-per-hop vs zero-copy payload comparison, then writes
//! `BENCH_dissemination.json` (including the box's `threads` count, so
//! cross-machine numbers are interpretable) so future changes have a
//! baseline to compare against.
//!
//! ```text
//! bench_dissemination [smoke|quick|full] [output.json]
//! bench_dissemination compare <new.json> <baseline.json> [--fail-over <pct>]
//! ```
//!
//! `compare` is CI's perf gate: it diffs the two files' events/second and
//! wall-clock per preset and prints `::warning::` lines on regressions
//! past the noise thresholds. By default it always exits 0 (wall-clock
//! noise must not fail a PR, only surface on it); with `--fail-over <pct>`
//! it exits 1 when any preset loses more than `pct` percent events/second
//! against the baseline.

use std::time::Instant;

use bench::sample_bench::run_sample_bench;
use bench::sched_bench::run_sched_bench;
use bench::zero_copy::{compare, FloodConfig};
use bench::{
    churn_preset, churn_waves_delta_preset, churn_waves_preset, long_chain_preset,
    multichannel_preset, run_scaled, sampling_bench_ops, scheduler_bench_ops, sharded_preset,
    Scale,
};
use fabric_experiments::churn::run_churn;
use fabric_experiments::churn_waves::{run_churn_waves, ChurnWavesConfig};
use fabric_experiments::dissemination::DisseminationConfig;
use fabric_experiments::long_chain::run_long_chain;
use fabric_experiments::multichannel::run_multichannel;
use fabric_experiments::shard::run_sharded;

struct PresetRow {
    name: &'static str,
    wall_secs: f64,
    events: u64,
    events_per_sec: f64,
    blocks: u64,
    completeness: f64,
    /// Discovery byte share of the run (churn-waves rows only).
    discovery_share: Option<f64>,
    /// Worker shards the run used (sharded rows only).
    shards: Option<usize>,
    /// Snapshot-bootstrap catch-up bytes at the tallest sweep point
    /// (long-chain row only).
    catchup_bytes: Option<u64>,
    /// Snapshot-bootstrap join -> serving seconds at the tallest sweep
    /// point (long-chain row only).
    time_to_serving: Option<f64>,
    /// Largest single snapshot-transfer wire message across the chunked
    /// sweep runs (long-chain row only; bounded by the chunk size).
    max_msg_bytes: Option<u64>,
    /// Per-checkpoint delta retention at the tallest sweep point
    /// (long-chain row only; flat where full exports grow linearly).
    delta_bytes: Option<u64>,
    /// Chunked-transfer resumes across the sweep (long-chain row only;
    /// 0 on the lossless LAN).
    resumes: Option<u64>,
}

fn time_preset(name: &'static str, preset: DisseminationConfig, scale: Scale) -> PresetRow {
    let start = Instant::now();
    let result = run_scaled(preset, scale);
    let wall = start.elapsed().as_secs_f64();
    PresetRow {
        name,
        wall_secs: wall,
        events: result.events,
        events_per_sec: result.events as f64 / wall.max(1e-9),
        blocks: result.blocks,
        completeness: result.completeness,
        discovery_share: None,
        shards: None,
        catchup_bytes: None,
        time_to_serving: None,
        max_msg_bytes: None,
        delta_bytes: None,
        resumes: None,
    }
}

fn time_multichannel(scale: Scale) -> PresetRow {
    let cfg = multichannel_preset(scale);
    let start = Instant::now();
    let result = run_multichannel(&cfg);
    let wall = start.elapsed().as_secs_f64();
    PresetRow {
        name: "multichannel",
        wall_secs: wall,
        events: result.events,
        events_per_sec: result.events as f64 / wall.max(1e-9),
        blocks: result.channels.iter().map(|c| c.blocks).sum(),
        completeness: result
            .channels
            .iter()
            .map(|c| c.completeness)
            .fold(1.0f64, f64::min),
        discovery_share: None,
        shards: None,
        catchup_bytes: None,
        time_to_serving: None,
        max_msg_bytes: None,
        delta_bytes: None,
        resumes: None,
    }
}

fn time_churn(scale: Scale) -> PresetRow {
    let cfg = churn_preset(scale);
    let start = Instant::now();
    let result = run_churn(&cfg);
    let wall = start.elapsed().as_secs_f64();
    // Meaningfulness guard: the preset must actually demonstrate churn —
    // a completed catch-up and a leader hand-off on the side channel.
    let caught_up = result.catchups.iter().all(|c| c.completed_at.is_some());
    let handed_off = result.channels[1].handoffs >= 1;
    if !caught_up || !handed_off {
        eprintln!(
            "::warning::churn preset degenerated: caught_up={caught_up} handed_off={handed_off}"
        );
    }
    PresetRow {
        name: "churn",
        wall_secs: wall,
        events: result.events,
        events_per_sec: result.events as f64 / wall.max(1e-9),
        blocks: result.channels.iter().map(|c| c.blocks).sum(),
        completeness: result
            .channels
            .iter()
            .map(|c| c.completeness)
            .fold(1.0f64, f64::min),
        discovery_share: None,
        shards: None,
        catchup_bytes: None,
        time_to_serving: None,
        max_msg_bytes: None,
        delta_bytes: None,
        resumes: None,
    }
}

fn time_churn_waves(name: &'static str, cfg: &ChurnWavesConfig) -> PresetRow {
    let start = Instant::now();
    let result = run_churn_waves(cfg);
    let wall = start.elapsed().as_secs_f64();
    // Meaningfulness guard: every join/leave must converge through the
    // discovery protocol and every wave must hand leadership off.
    let total = result.convergence.len().max(1);
    let done = result
        .convergence
        .iter()
        .filter(|r| r.latency().is_some())
        .count();
    let converged = done == total;
    let handed_off = result.channels[1..]
        .iter()
        .all(|c| c.handoffs as usize == cfg.waves);
    if !converged || !handed_off {
        eprintln!(
            "::warning::{name} preset degenerated: converged={converged} handed_off={handed_off}"
        );
    }
    PresetRow {
        name,
        wall_secs: wall,
        events: result.events,
        events_per_sec: result.events as f64 / wall.max(1e-9),
        blocks: result.channels.iter().map(|c| c.blocks).sum(),
        // Convergence completeness stands in for delivery completeness:
        // the fraction of join/leave records that fully converged.
        completeness: done as f64 / total as f64,
        discovery_share: Some(result.overall_discovery_share()),
        shards: None,
        catchup_bytes: None,
        time_to_serving: None,
        max_msg_bytes: None,
        delta_bytes: None,
        resumes: None,
    }
}

fn time_sharded(scale: Scale) -> PresetRow {
    let cfg = sharded_preset(scale);
    let start = Instant::now();
    let result = run_sharded(&cfg);
    let wall = start.elapsed().as_secs_f64();
    if result.completeness < 1.0 {
        eprintln!(
            "::warning::large preset incomplete: completeness {:.4}",
            result.completeness
        );
    }
    PresetRow {
        name: "large_sharded",
        wall_secs: wall,
        events: result.events,
        events_per_sec: result.events as f64 / wall.max(1e-9),
        blocks: result.blocks,
        completeness: result.completeness,
        discovery_share: None,
        shards: Some(cfg.shards),
        catchup_bytes: None,
        time_to_serving: None,
        max_msg_bytes: None,
        delta_bytes: None,
        resumes: None,
    }
}

fn time_long_chain(scale: Scale) -> PresetRow {
    let cfg = long_chain_preset(scale);
    let start = Instant::now();
    let result = run_long_chain(&cfg);
    let wall = start.elapsed().as_secs_f64();
    // Meaningfulness guard: the sweep exists to show the snapshot path
    // growing strictly slower than genesis replay.
    let (genesis_growth, snapshot_growth) = result.bytes_growth();
    if snapshot_growth >= genesis_growth {
        eprintln!(
            "::warning::long_chain preset degenerated: snapshot byte growth \
             {snapshot_growth:.2}x did not trail genesis {genesis_growth:.2}x"
        );
    }
    let tallest = result.rows.last().expect("sweep is non-empty");
    // Meaningfulness guard: chunking exists to bound the wire — the
    // largest chunked snapshot message must stay within the chunk size.
    if result.max_msg_bytes() > cfg.chunk_size as u64 {
        eprintln!(
            "::warning::long_chain preset degenerated: chunked max message \
             {} B exceeds chunk size {} B",
            result.max_msg_bytes(),
            cfg.chunk_size
        );
    }
    PresetRow {
        name: "long_chain",
        wall_secs: wall,
        events: result.events,
        events_per_sec: result.events as f64 / wall.max(1e-9),
        blocks: result.blocks,
        completeness: 1.0, // run_long_chain panics on an incomplete catch-up
        discovery_share: None,
        shards: None,
        catchup_bytes: Some(tallest.snapshot_bytes),
        time_to_serving: Some(tallest.snapshot_time_to_serving.as_secs_f64()),
        max_msg_bytes: Some(result.max_msg_bytes()),
        delta_bytes: Some(result.delta_bytes()),
        resumes: Some(result.resumes()),
    }
}

/// Pulls a numeric field out of a one-preset-per-line JSON row. The emitter
/// above writes each preset on its own line, so a line-local scan is exact
/// (no vendored JSON parser exists in this offline workspace).
fn field(line: &str, key: &str) -> Option<f64> {
    let tag = format!("\"{key}\": ");
    let start = line.find(&tag)? + tag.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn preset_rows(path: &str) -> Vec<(String, f64, f64, Option<f64>)> {
    let Ok(text) = std::fs::read_to_string(path) else {
        eprintln!("::warning::perf-diff: cannot read {path}");
        return Vec::new();
    };
    text.lines()
        .filter(|l| l.contains("\"name\": "))
        .filter_map(|l| {
            let name = l
                .split("\"name\": \"")
                .nth(1)?
                .split('"')
                .next()?
                .to_owned();
            Some((
                name,
                field(l, "wall_secs")?,
                field(l, "events_per_sec")?,
                field(l, "max_msg_bytes"),
            ))
        })
        .collect()
}

/// Perf diff: tolerate 25 % wall-clock growth / 20 % events-per-second
/// loss before flagging (CI machines are noisy; the thresholds catch
/// engine regressions, not scheduler jitter). Warn-only by default; with
/// `fail_over = Some(pct)` any preset losing more than `pct` percent
/// events/second fails the run.
fn run_compare(new_path: &str, baseline_path: &str, fail_over: Option<f64>) {
    let new = preset_rows(new_path);
    let base = preset_rows(baseline_path);
    if new.is_empty() || base.is_empty() {
        // Warn-only mode tolerates a broken input (noise must not fail a
        // PR), but a hard gate that compared nothing must not pass green.
        if fail_over.is_some() {
            eprintln!("::error::perf-diff: missing preset rows; refusing to gate on nothing");
            std::process::exit(1);
        }
        eprintln!("::warning::perf-diff: missing preset rows; skipping comparison");
        return;
    }
    let mode = match fail_over {
        Some(pct) => format!("fail over {pct} % events/s loss"),
        None => "warn-only".to_owned(),
    };
    eprintln!("# perf diff: {new_path} vs baseline {baseline_path} ({mode})");
    let mut hard_regressions = Vec::new();
    for (name, wall, eps, max_msg) in &new {
        let Some((_, base_wall, base_eps, base_max_msg)) =
            base.iter().find(|(n, _, _, _)| n == name)
        else {
            eprintln!("{name:<22} NEW (no baseline row)");
            continue;
        };
        let wall_ratio = wall / base_wall.max(1e-9);
        let eps_ratio = eps / base_eps.max(1e-9);
        eprintln!(
            "{name:<22} wall {wall:>8.3} s ({:+.1} %) | {eps:>12.0} events/s ({:+.1} %)",
            (wall_ratio - 1.0) * 100.0,
            (eps_ratio - 1.0) * 100.0,
        );
        if wall_ratio > 1.25 || eps_ratio < 0.80 {
            eprintln!(
                "::warning::perf regression in {name}: wall {base_wall:.3} s -> {wall:.3} s, \
                 {base_eps:.0} -> {eps:.0} events/s"
            );
        }
        // Warn-only wire-bound check: the chunked snapshot ceiling is a
        // correctness-ish number (it tracks the configured chunk size), so
        // any growth is suspicious even when throughput holds.
        if let (Some(m), Some(bm)) = (max_msg, base_max_msg) {
            if m > bm {
                eprintln!(
                    "::warning::perf-diff: {name} chunked max message grew {bm:.0} -> {m:.0} B"
                );
            }
        }
        if let Some(pct) = fail_over {
            if eps_ratio < 1.0 - pct / 100.0 {
                hard_regressions.push(format!(
                    "{name}: {base_eps:.0} -> {eps:.0} events/s ({:+.1} %)",
                    (eps_ratio - 1.0) * 100.0
                ));
            }
        }
    }
    for (name, _, _, _) in &base {
        if !new.iter().any(|(n, _, _, _)| n == name) {
            eprintln!("::warning::perf-diff: preset {name} disappeared from the new run");
        }
    }
    if !hard_regressions.is_empty() {
        for r in &hard_regressions {
            eprintln!("::error::perf regression past --fail-over threshold: {r}");
        }
        std::process::exit(1);
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("compare") {
        // Split flags (and their values) from positional paths so
        // `compare --fail-over 60 new.json baseline.json` parses the same
        // as the trailing-flag order.
        let mut positional: Vec<&str> = Vec::new();
        let mut fail_over: Option<f64> = None;
        let mut rest = args[1..].iter();
        while let Some(arg) = rest.next() {
            if arg == "--fail-over" {
                fail_over = rest.next().and_then(|v| v.parse::<f64>().ok());
                if fail_over.is_none() {
                    eprintln!("error: --fail-over requires a numeric percentage");
                    std::process::exit(2);
                }
            } else if arg.starts_with("--") {
                eprintln!("error: unknown compare flag {arg}");
                std::process::exit(2);
            } else {
                positional.push(arg);
            }
        }
        let new_path = positional.first().copied().unwrap_or("BENCH_new.json");
        let baseline = positional
            .get(1)
            .copied()
            .unwrap_or("BENCH_dissemination.json");
        run_compare(new_path, baseline, fail_over);
        return;
    }
    let scale = args
        .first()
        .and_then(|s| Scale::parse(s))
        .unwrap_or(Scale::Smoke);
    let out_path = args
        .get(1)
        .cloned()
        .unwrap_or_else(|| "BENCH_dissemination.json".to_owned());

    eprintln!("# bench_dissemination — scale {scale:?}");

    let presets = vec![
        time_preset(
            "fig04_06_original",
            DisseminationConfig::fig04_06_original(),
            scale,
        ),
        time_preset(
            "fig07_09_enhanced_f4",
            DisseminationConfig::fig07_09_enhanced_f4(),
            scale,
        ),
        time_multichannel(scale),
        time_churn(scale),
        time_churn_waves("churn_waves", &churn_waves_preset(scale)),
        time_churn_waves("churn_waves_delta", &churn_waves_delta_preset(scale)),
        time_sharded(scale),
        time_long_chain(scale),
    ];
    for row in &presets {
        let share = row
            .discovery_share
            .map(|s| format!(" | discovery share {s:.4}"))
            .unwrap_or_default();
        let shards = row
            .shards
            .map(|s| format!(" | {s} shards"))
            .unwrap_or_default();
        let catchup = row
            .catchup_bytes
            .zip(row.time_to_serving)
            .map(|(b, t)| format!(" | catch-up {b} B, {t:.2} s to serving"))
            .unwrap_or_default();
        let chunked = row
            .max_msg_bytes
            .zip(row.delta_bytes)
            .zip(row.resumes)
            .map(|((m, d), r)| format!(" | chunked max {m} B, delta/ckpt {d} B, {r} resumes"))
            .unwrap_or_default();
        eprintln!(
            "{:<22} wall {:>8.3} s | {:>9} events | {:>12.0} events/s | {} blocks | completeness {:.4}{share}{shards}{catchup}{chunked}",
            row.name, row.wall_secs, row.events, row.events_per_sec, row.blocks, row.completeness
        );
    }
    let shares: Vec<(f64, &str)> = presets
        .iter()
        .filter_map(|r| r.discovery_share.map(|s| (s, r.name)))
        .collect();
    if let [(full, _), (delta, _)] = shares.as_slice() {
        if delta >= full {
            eprintln!(
                "::warning::delta discovery did not shrink the byte share: {delta:.4} vs {full:.4}"
            );
        }
    }

    // Scheduler microbench: the seed's binary heap vs the timing wheel on
    // an identical gossip-shaped op mix.
    let sched = run_sched_bench(scheduler_bench_ops(scale), 3);
    eprintln!(
        "scheduler microbench: heap {:>12.0} ops/s | wheel {:>12.0} ops/s | {:.2}x",
        sched.heap.ops_per_sec,
        sched.wheel.ops_per_sec,
        sched.speedup()
    );

    // Sampling microbench: scalar latency draws vs the batched stream.
    let sampling = run_sample_bench(sampling_bench_ops(scale), 3);
    eprintln!(
        "sampling microbench: scalar {:>6.2} ns/op | batched {:>6.2} ns/op | {:.2}x",
        sampling.scalar.ns_per_op,
        sampling.batched.ns_per_op,
        sampling.speedup()
    );

    // Zero-copy vs clone-per-hop on the fig04 flood shape.
    let flood = FloodConfig::fig04(20);
    let (owned, shared) = compare(flood, 3);
    let speedup = owned.as_secs_f64() / shared.as_secs_f64().max(1e-9);
    eprintln!(
        "zero-copy speedup over clone-per-hop baseline: {speedup:.2}x (baseline {owned:?}, zero-copy {shared:?})"
    );

    let threads = std::thread::available_parallelism()
        .map(|cores| cores.get())
        .unwrap_or(1);

    let mut json = String::from("{\n");
    json.push_str(&format!("  \"scale\": \"{scale:?}\",\n"));
    json.push_str(&format!("  \"threads\": {threads},\n"));
    json.push_str("  \"presets\": [\n");
    for (i, row) in presets.iter().enumerate() {
        let share = row
            .discovery_share
            .map(|s| format!(", \"discovery_share\": {s:.6}"))
            .unwrap_or_default();
        let share = format!(
            "{share}{}{}",
            row.shards
                .map(|s| format!(", \"shards\": {s}"))
                .unwrap_or_default(),
            row.catchup_bytes
                .zip(row.time_to_serving)
                .map(|(b, t)| format!(", \"catchup_bytes\": {b}, \"time_to_serving\": {t:.6}"))
                .unwrap_or_default()
        );
        let share = format!(
            "{share}{}",
            row.max_msg_bytes
                .zip(row.delta_bytes)
                .zip(row.resumes)
                .map(|((m, d), r)| format!(
                    ", \"max_msg_bytes\": {m}, \"delta_bytes\": {d}, \"resumes\": {r}"
                ))
                .unwrap_or_default()
        );
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"wall_secs\": {:.6}, \"events\": {}, \"events_per_sec\": {:.1}, \"blocks\": {}, \"completeness\": {:.6}{share}}}{}\n",
            row.name,
            row.wall_secs,
            row.events,
            row.events_per_sec,
            row.blocks,
            row.completeness,
            if i + 1 < presets.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"scheduler\": {{\"heap_ops_per_sec\": {:.1}, \"wheel_ops_per_sec\": {:.1}, \"speedup\": {:.3}, \"ops\": {}}},\n",
        sched.heap.ops_per_sec,
        sched.wheel.ops_per_sec,
        sched.speedup(),
        sched.heap.ops
    ));
    json.push_str(&format!(
        "  \"sampling\": {{\"scalar_ns_per_op\": {:.3}, \"batched_ns_per_op\": {:.3}, \"speedup\": {:.3}, \"ops\": {}}},\n",
        sampling.scalar.ns_per_op,
        sampling.batched.ns_per_op,
        sampling.speedup(),
        sampling.scalar.ops
    ));
    json.push_str(&format!(
        "  \"zero_copy\": {{\"baseline_secs\": {:.6}, \"shared_secs\": {:.6}, \"speedup\": {:.3}, \"peers\": {}, \"blocks\": {}}}\n",
        owned.as_secs_f64(),
        shared.as_secs_f64(),
        speedup,
        flood.peers,
        flood.blocks
    ));
    json.push_str("}\n");

    if let Err(e) = std::fs::write(&out_path, json) {
        eprintln!("error: cannot write {out_path}: {e}");
        std::process::exit(1);
    }
    eprintln!("wrote {out_path}");
}
