//! The `sampling` microbench: scalar vs batched latency sampling.
//!
//! PR 5 took the scheduler off the critical path; per-event cost then
//! concentrates in [`desim::LatencyModel::sample`]'s `-u.ln()` and spike
//! draws. [`desim::SampleStream`] amortizes those across
//! [`desim::SampleStream::BATCH`]-sized refills (tight RNG pass, then the
//! ln-heavy arithmetic pass). This bench times both against the same Lan
//! model and verifies they produce the identical duration sequence — the
//! position-pinned stream contract that keeps golden traces stable.

use std::time::Instant;

use desim::{Duration, LatencyModel, SampleStream};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// What one sampling strategy measured.
#[derive(Debug, Clone, Copy)]
pub struct SampleRun {
    /// Samples drawn.
    pub ops: u64,
    /// Wall-clock seconds for the whole run.
    pub wall_secs: f64,
    /// Nanoseconds per sample.
    pub ns_per_op: f64,
}

/// The scalar-vs-batched comparison recorded in
/// `BENCH_dissemination.json`.
#[derive(Debug, Clone, Copy)]
pub struct SampleBench {
    /// One `sample()` call (two RNG draws + one `ln`) per event.
    pub scalar: SampleRun,
    /// `SampleStream::next_sample` over chunked `fill` refills.
    pub batched: SampleRun,
}

impl SampleBench {
    /// Scalar ns/op over batched ns/op.
    pub fn speedup(&self) -> f64 {
        self.scalar.ns_per_op / self.batched.ns_per_op.max(1e-9)
    }
}

/// The latency model both strategies sample: the Lan shape every preset's
/// network template uses (exponential jitter plus rare spikes).
fn bench_model() -> LatencyModel {
    LatencyModel::Lan {
        base: Duration::from_micros(120),
        jitter: Duration::from_micros(80),
        spike_prob: 0.001,
        spike_mult: 20,
    }
}

fn run_scalar(ops: u64, seed: u64) -> (SampleRun, u64) {
    let model = bench_model();
    let mut rng = StdRng::seed_from_u64(seed);
    let start = Instant::now();
    let mut acc = 0u64;
    for _ in 0..ops {
        acc = acc.wrapping_add(model.sample(&mut rng).as_nanos());
    }
    let wall = start.elapsed().as_secs_f64();
    (
        SampleRun {
            ops,
            wall_secs: wall,
            ns_per_op: wall * 1e9 / ops.max(1) as f64,
        },
        acc,
    )
}

fn run_batched(ops: u64, seed: u64) -> (SampleRun, u64) {
    let mut stream = SampleStream::new(bench_model(), seed);
    let start = Instant::now();
    let mut acc = 0u64;
    for _ in 0..ops {
        acc = acc.wrapping_add(stream.next_sample().as_nanos());
    }
    let wall = start.elapsed().as_secs_f64();
    (
        SampleRun {
            ops,
            wall_secs: wall,
            ns_per_op: wall * 1e9 / ops.max(1) as f64,
        },
        acc,
    )
}

/// Runs the microbench at `ops` samples per strategy, best-of-`reps`.
///
/// # Panics
///
/// Panics if the two strategies' duration checksums diverge — they draw
/// from the same seeded stream, so inequality means the batched refill
/// broke the position-pinned contract.
pub fn run_sample_bench(ops: u64, reps: usize) -> SampleBench {
    let mut scalar: Option<SampleRun> = None;
    let mut batched: Option<SampleRun> = None;
    for rep in 0..reps.max(1) {
        let seed = 0x53414d50u64 + rep as u64;
        let (s, s_acc) = run_scalar(ops, seed);
        let (b, b_acc) = run_batched(ops, seed);
        assert_eq!(
            s_acc, b_acc,
            "scalar and batched sampling diverged at seed {seed}"
        );
        if scalar.is_none_or(|best| s.wall_secs < best.wall_secs) {
            scalar = Some(s);
        }
        if batched.is_none_or(|best| b.wall_secs < best.wall_secs) {
            batched = Some(b);
        }
    }
    SampleBench {
        scalar: scalar.expect("reps >= 1"),
        batched: batched.expect("reps >= 1"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strategies_agree_and_measure() {
        let bench = run_sample_bench(50_000, 1);
        assert_eq!(bench.scalar.ops, 50_000);
        assert!(bench.scalar.ns_per_op > 0.0 && bench.batched.ns_per_op > 0.0);
        assert!(bench.speedup() > 0.0);
    }
}
