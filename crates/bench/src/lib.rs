//! Shared plumbing for the benchmark targets and the `repro` CLI.
//!
//! Every figure and table of the paper maps to one function here; the
//! Criterion benches time the underlying runs and print the regenerated
//! series, while `repro` produces the full-scale outputs recorded in
//! `EXPERIMENTS.md`.

use fabric_experiments::churn::ChurnConfig;
use fabric_experiments::churn_waves::ChurnWavesConfig;
use fabric_experiments::dissemination::{
    run_dissemination, DisseminationConfig, DisseminationResult,
};
use fabric_experiments::long_chain::LongChainConfig;
use fabric_experiments::multichannel::MultiChannelConfig;
use fabric_experiments::shard::ShardedConfig;

pub mod sample_bench;
pub mod sched_bench;
pub mod zero_copy;

/// Scale of a reproduction run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Full paper scale: 100 peers, 1 000 blocks, five Table II runs.
    Full,
    /// Laptop-friendly: 100 peers, 120 blocks, two Table II runs.
    Quick,
    /// Smoke-test scale for CI and Criterion timing loops.
    Smoke,
}

impl Scale {
    /// Transactions for a dissemination run at this scale.
    pub fn dissemination_txs(self) -> usize {
        match self {
            Scale::Full => 50_000,
            Scale::Quick => 6_000,
            Scale::Smoke => 1_000,
        }
    }

    /// (keys, rounds, repetitions) for Table II at this scale.
    pub fn table2_shape(self) -> (usize, usize, usize) {
        match self {
            Scale::Full => (100, 100, 5),
            Scale::Quick => (100, 30, 2),
            Scale::Smoke => (40, 10, 1),
        }
    }

    /// Parses a CLI argument.
    pub fn parse(s: &str) -> Option<Scale> {
        match s {
            "full" => Some(Scale::Full),
            "quick" => Some(Scale::Quick),
            "smoke" => Some(Scale::Smoke),
            _ => None,
        }
    }
}

/// The multi-channel benchmark preset at this scale: overlapping
/// membership windows with skewed per-channel block rates (see
/// [`MultiChannelConfig::skewed`]).
pub fn multichannel_preset(scale: Scale) -> MultiChannelConfig {
    match scale {
        Scale::Full => MultiChannelConfig::skewed(8, 200, 1_000),
        Scale::Quick => MultiChannelConfig::skewed(4, 100, 240),
        Scale::Smoke => MultiChannelConfig::skewed(2, 30, 40),
    }
}

/// The churn benchmark preset at this scale: two full-pipeline channels
/// with a late joiner catching up mid-run and the side channel's leader
/// leaving (see [`ChurnConfig::standard`]).
pub fn churn_preset(scale: Scale) -> ChurnConfig {
    match scale {
        Scale::Full => ChurnConfig::standard(100, 40, 400),
        Scale::Quick => ChurnConfig::standard(40, 16, 100),
        Scale::Smoke => ChurnConfig::standard(16, 8, 20),
    }
}

/// The churn-waves benchmark preset at this scale: C churned side
/// channels under the gossiped discovery protocol — waves of
/// joiners/leavers plus a flash crowd, no membership oracle (see
/// [`ChurnWavesConfig::standard`]).
pub fn churn_waves_preset(scale: Scale) -> ChurnWavesConfig {
    match scale {
        Scale::Full => ChurnWavesConfig::standard(3, 16, 300),
        Scale::Quick => ChurnWavesConfig::standard(2, 10, 100),
        Scale::Smoke => ChurnWavesConfig::standard(2, 6, 20),
    }
}

/// The churn-waves preset under the byte-lean discovery wire format —
/// delta anti-entropy plus adaptive heartbeat cadence (see
/// [`ChurnWavesConfig::standard_delta`]). Same shape and seed as
/// [`churn_waves_preset`], so the two rows' discovery byte shares compare
/// one-to-one in `BENCH_dissemination.json`.
pub fn churn_waves_delta_preset(scale: Scale) -> ChurnWavesConfig {
    match scale {
        Scale::Full => ChurnWavesConfig::standard_delta(3, 16, 300),
        Scale::Quick => ChurnWavesConfig::standard_delta(2, 10, 100),
        Scale::Smoke => ChurnWavesConfig::standard_delta(2, 6, 20),
    }
}

/// The long-chain benchmark preset at this scale: joiner catch-up cost
/// swept over chain height, genesis replay vs checkpoint-snapshot
/// bootstrap (see [`LongChainConfig::standard`]). The recorded
/// `catchup_bytes` / `time_to_serving` columns are the snapshot path at
/// the tallest sweep point — the number the O(tail) claim bounds.
pub fn long_chain_preset(scale: Scale) -> LongChainConfig {
    match scale {
        Scale::Full => LongChainConfig::standard(),
        Scale::Quick => LongChainConfig::quick(),
        Scale::Smoke => LongChainConfig {
            heights: vec![16, 24],
            peers: 10,
            side_members: 5,
            ..LongChainConfig::standard()
        },
    }
}

/// Steady-state ops for the `scheduler` microbench at this scale.
pub fn scheduler_bench_ops(scale: Scale) -> u64 {
    match scale {
        Scale::Full => 4_000_000,
        Scale::Quick => 1_500_000,
        Scale::Smoke => 200_000,
    }
}

/// Samples for the `sampling` microbench (scalar vs batched latency
/// draws) at this scale.
pub fn sampling_bench_ops(scale: Scale) -> u64 {
    match scale {
        Scale::Full => 20_000_000,
        Scale::Quick => 8_000_000,
        Scale::Smoke => 1_000_000,
    }
}

/// The `large` sharded preset at this scale: disjoint clusters of
/// overlapping channel pairs simulated as one run, partitioned across
/// worker shards (see [`ShardedConfig::clustered`]). Full scale is the
/// production-class deployment (2 016 peers, 252 channels) the serial
/// engine cannot cover in a bench-job budget.
pub fn sharded_preset(scale: Scale) -> ShardedConfig {
    match scale {
        Scale::Full => ShardedConfig::large(),
        Scale::Quick => ShardedConfig::large_quick(),
        Scale::Smoke => ShardedConfig::large_smoke(),
    }
}

/// Applies `scale` to a full-size dissemination preset and runs it.
pub fn run_scaled(preset: DisseminationConfig, scale: Scale) -> DisseminationResult {
    let cfg = match scale {
        Scale::Full => preset,
        _ => preset.scaled(scale.dissemination_txs()),
    };
    run_dissemination(&cfg)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parses() {
        assert_eq!(Scale::parse("full"), Some(Scale::Full));
        assert_eq!(Scale::parse("quick"), Some(Scale::Quick));
        assert_eq!(Scale::parse("smoke"), Some(Scale::Smoke));
        assert_eq!(Scale::parse("nope"), None);
    }

    #[test]
    fn scales_shrink_work() {
        assert!(Scale::Smoke.dissemination_txs() < Scale::Quick.dissemination_txs());
        assert!(Scale::Quick.dissemination_txs() < Scale::Full.dissemination_txs());
        let (k, r, reps) = Scale::Smoke.table2_shape();
        assert!(k * r > 0 && reps > 0);
    }
}
