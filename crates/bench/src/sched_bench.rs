//! The `scheduler` microbench: seed-style binary heap vs timing wheel.
//!
//! Drives both [`desim::sched`] implementations through an identical
//! gossip-shaped event mix — dense same-bucket chatter, periodic
//! seconds-scale timers, a sprinkle of cancellations, pops interleaved
//! with pushes at a steady queue depth — and times raw operations per
//! second. The workload is deterministic (fixed splitmix stream), so two
//! runs measure the same instruction mix and the heap/wheel ratio is a
//! clean scheduler comparison, uncontaminated by protocol logic.

use std::time::Instant;

use desim::sched::{HeapScheduler, Popped, Scheduler, TimingWheel};
use desim::{Duration, Time};

/// What one scheduler measured on the shared workload.
#[derive(Debug, Clone, Copy)]
pub struct SchedRun {
    /// Total push/cancel/pop operations performed.
    pub ops: u64,
    /// Wall-clock seconds for the whole workload.
    pub wall_secs: f64,
    /// Operations per second.
    pub ops_per_sec: f64,
    /// Checksum over the pop stream (equality across schedulers proves
    /// both executed the same event order).
    pub checksum: u64,
}

/// The heap-vs-wheel comparison recorded in `BENCH_dissemination.json`.
#[derive(Debug, Clone, Copy)]
pub struct SchedBench {
    /// The seed-style `BinaryHeap` + cancel-bitset reference.
    pub heap: SchedRun,
    /// The production timing wheel.
    pub wheel: SchedRun,
}

impl SchedBench {
    /// Wheel ops/s over heap ops/s.
    pub fn speedup(&self) -> f64 {
        self.wheel.ops_per_sec / self.heap.ops_per_sec.max(1e-9)
    }
}

/// Payload sized like a mid-size engine event (message headers + ids), so
/// the heap pays the full-entry sift cost the real engine paid.
type Payload = [u64; 6];

fn drive<S: Scheduler<Payload>>(mut sched: S, events: u64) -> SchedRun {
    let mut x: u64 = 0x9e37_79b9_7f4a_7c15;
    let mut next = move || {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        x >> 11
    };
    let start = Instant::now();
    let mut now = Time::ZERO;
    let mut ops = 0u64;
    let mut checksum = 0u64;
    let mut ids = Vec::with_capacity(4096);
    // Warm a realistic queue depth before the steady-state loop.
    for i in 0..4096u64 {
        ids.push(sched.push(now + Duration::from_nanos(next() % 2_000_000_000), [i; 6]));
        ops += 1;
    }
    for i in 0..events {
        let r = next();
        match r % 16 {
            // Dense near-future chatter: the zero-to-few-ms deliveries
            // that dominate a dissemination run.
            0..=5 => {
                ids.push(sched.push(now + Duration::from_nanos(r % 3_000_000), [i; 6]));
            }
            // Protocol timers: hundreds of ms to tens of seconds out.
            6 | 7 => {
                ids.push(sched.push(
                    now + Duration::from_nanos(400_000_000 + r % 20_000_000_000),
                    [i; 6],
                ));
            }
            // Occasional cancellation of an arbitrary (possibly fired) id.
            8 => {
                if !ids.is_empty() {
                    sched.cancel(ids[(r as usize) % ids.len()]);
                }
            }
            // Pops balance the pushes, holding the warmed queue depth
            // roughly steady — the shape of a real dissemination run.
            _ => {
                if let Some(p) = sched.pop() {
                    match p {
                        Popped::Event { at, seq, payload } => {
                            now = at;
                            checksum = checksum
                                .wrapping_mul(31)
                                .wrapping_add(at.as_nanos() ^ seq ^ payload[0]);
                        }
                        Popped::Cancelled { at } => {
                            now = at;
                            checksum = checksum.wrapping_mul(31).wrapping_add(at.as_nanos());
                        }
                    }
                }
            }
        }
        ops += 1;
    }
    while let Some(p) = sched.pop() {
        if let Popped::Event { at, seq, payload } = p {
            checksum = checksum
                .wrapping_mul(31)
                .wrapping_add(at.as_nanos() ^ seq ^ payload[0]);
        }
        ops += 1;
    }
    let wall = start.elapsed().as_secs_f64();
    SchedRun {
        ops,
        wall_secs: wall,
        ops_per_sec: ops as f64 / wall.max(1e-9),
        checksum,
    }
}

/// Runs the microbench at `events` steady-state operations per scheduler,
/// best-of-`reps` to shave scheduler-external noise.
pub fn run_sched_bench(events: u64, reps: usize) -> SchedBench {
    let mut heap: Option<SchedRun> = None;
    let mut wheel: Option<SchedRun> = None;
    for _ in 0..reps.max(1) {
        let h = drive(HeapScheduler::new(), events);
        let w = drive(TimingWheel::new(), events);
        assert_eq!(
            h.checksum, w.checksum,
            "heap and wheel diverged on the microbench workload"
        );
        if heap.is_none_or(|b| h.wall_secs < b.wall_secs) {
            heap = Some(h);
        }
        if wheel.is_none_or(|b| w.wall_secs < b.wall_secs) {
            wheel = Some(w);
        }
    }
    SchedBench {
        heap: heap.expect("reps >= 1"),
        wheel: wheel.expect("reps >= 1"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn microbench_runs_and_schedulers_agree() {
        let bench = run_sched_bench(20_000, 1);
        assert_eq!(bench.heap.checksum, bench.wheel.checksum);
        assert!(bench.heap.ops > 20_000 && bench.wheel.ops > 20_000);
        assert!(bench.heap.ops_per_sec > 0.0 && bench.wheel.ops_per_sec > 0.0);
    }
}
