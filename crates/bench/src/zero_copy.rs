//! The clone-per-hop baseline vs the zero-copy payload, head to head.
//!
//! The dissemination pipeline's hot path is "peer forwards a ~160 KB block
//! to `fout` neighbours". Before the `BlockRef` refactor a naive
//! implementation pays, per hop, (a) a deep copy of the block's 50
//! transactions — for Fig. 4's workload that is ~155 KB of materialized
//! payload bytes — and (b) two full `wire_size` walks over the transaction
//! list (the engine reads the size at departure and again at delivery).
//! The zero-copy path pays a reference-count bump and two cached-integer
//! reads.
//!
//! This module reproduces that contrast under identical event schedules:
//! one flood protocol, generic over its payload representation, driven by
//! the same seeds through the same network model. [`run_flood`] is used by
//! the `zero_copy` Criterion bench and by the `bench_dissemination` JSON
//! emitter, which records the measured speedup for the perf trajectory.

use std::fmt;
use std::time::Instant;

use desim::{Ctx, Message, NetworkConfig, NodeId, Protocol, Simulation};
use fabric_types::block::{Block, BlockRef};
use fabric_types::crypto::Hash256;
use fabric_types::ids::{ClientId, TxId};
use fabric_types::rwset::{RwSet, Value};
use fabric_types::transaction::Transaction;
use rand::RngExt;

/// Transactions per block, as the paper's dissemination workload cuts them.
const TXS_PER_BLOCK: usize = 50;
/// Materialized payload bytes per transaction (≈ the paper's 3.1 KB padded
/// transactions, carried as real bytes so a deep clone really copies them).
const TX_PAYLOAD_BYTES: usize = 3_100;

/// Builds one ~160 KB block whose payload is materialized bytes: cloning
/// it copies the full content, exactly what a naive per-hop copy costs.
pub fn payload_block(number: u64) -> Block {
    let txs: Vec<Transaction> = (0..TXS_PER_BLOCK)
        .map(|i| {
            let rwset = RwSet::builder()
                .write(
                    format!("row{number}_{i}"),
                    Value(vec![(number as u8).wrapping_add(i as u8); TX_PAYLOAD_BYTES]),
                )
                .build();
            Transaction::new(
                TxId(number * 1_000 + i as u64),
                "payload",
                ClientId(0),
                rwset,
            )
        })
        .collect();
    Block::new(number, Hash256::ZERO, txs)
}

/// How a flood message carries its block: the axis under test.
pub trait BlockPayload: Clone + fmt::Debug {
    /// Wraps a freshly cut block (once, at injection).
    fn wrap(block: Block) -> Self;
    /// The block number.
    fn number(&self) -> u64;
    /// The block's wire size — recomputed or cached, per implementation.
    fn size(&self) -> usize;
}

/// The naive baseline: the block travels by value. Every hop's message
/// clone deep-copies the transactions and every size query re-walks them.
#[derive(Debug, Clone)]
pub struct OwnedBlock(pub Block);

impl BlockPayload for OwnedBlock {
    fn wrap(block: Block) -> Self {
        OwnedBlock(block)
    }
    fn number(&self) -> u64 {
        self.0.number()
    }
    fn size(&self) -> usize {
        self.0.wire_size() // full walk over 50 transactions, per query
    }
}

/// The zero-copy representation: an `Arc`-backed [`BlockRef`] with its
/// wire size precomputed. Clone = pointer bump, size = cached integer.
#[derive(Debug, Clone)]
pub struct SharedBlock(pub BlockRef);

impl BlockPayload for SharedBlock {
    fn wrap(block: Block) -> Self {
        SharedBlock(BlockRef::new(block))
    }
    fn number(&self) -> u64 {
        self.0.number()
    }
    fn size(&self) -> usize {
        self.0.wire_size()
    }
}

/// A full-content push, as stock Fabric's infect-and-die phase sends it.
#[derive(Debug, Clone)]
pub struct FloodMsg<P>(pub P);

impl<P: BlockPayload> Message for FloodMsg<P> {
    fn wire_size(&self) -> usize {
        28 + self.0.size()
    }
    fn kind(&self) -> &'static str {
        "block"
    }
    fn kind_id(&self) -> desim::KindId {
        static ID: std::sync::OnceLock<desim::KindId> = std::sync::OnceLock::new();
        *ID.get_or_init(|| desim::KindId::intern("block"))
    }
}

/// Infect-and-die flood over one organization: every first reception
/// forwards the block to `fout` distinct random peers, duplicates die.
/// The Fig. 4 gossip shape, reduced to the payload-handling hot path.
#[derive(Debug)]
pub struct FloodNet<P> {
    peers: usize,
    fout: usize,
    /// seen[peer] holds the block numbers already received.
    seen: Vec<Vec<bool>>,
    /// (block, peer) first receptions observed.
    pub delivered: u64,
    _payload: std::marker::PhantomData<P>,
}

impl<P> FloodNet<P> {
    /// A flood over `peers` peers expecting `blocks` blocks.
    pub fn new(peers: usize, fout: usize, blocks: usize) -> Self {
        FloodNet {
            peers,
            fout,
            seen: vec![vec![false; blocks + 1]; peers],
            delivered: 0,
            _payload: std::marker::PhantomData,
        }
    }
}

impl<P: BlockPayload> Protocol for FloodNet<P> {
    type Msg = FloodMsg<P>;
    type Timer = ();

    fn on_message(
        &mut self,
        ctx: &mut Ctx<'_, FloodMsg<P>, ()>,
        to: NodeId,
        _from: NodeId,
        msg: FloodMsg<P>,
    ) {
        let num = msg.0.number() as usize;
        let slot = &mut self.seen[to.index()][num];
        if *slot {
            return; // die: duplicates are dropped, never re-forwarded
        }
        *slot = true;
        self.delivered += 1;
        // Forward to `fout` distinct peers (partial Fisher–Yates, self
        // excluded), cloning the payload once per target — the hop cost
        // under measurement.
        let n = self.peers;
        let fout = self.fout;
        let mut pool: Vec<u32> = (0..n as u32)
            .filter(|candidate| *candidate != to.0)
            .collect();
        for i in 0..fout.min(pool.len()) {
            let j = ctx.rng().random_range(i..pool.len());
            pool.swap(i, j);
            let target = NodeId(pool[i]);
            ctx.send(to, target, msg.clone());
        }
    }

    fn on_timer(&mut self, _: &mut Ctx<'_, FloodMsg<P>, ()>, _: NodeId, _: ()) {}
}

/// Parameters of one flood measurement.
#[derive(Debug, Clone, Copy)]
pub struct FloodConfig {
    /// Organization size (Fig. 4: 100).
    pub peers: usize,
    /// Push fan-out (stock Fabric: 3).
    pub fout: usize,
    /// Blocks pushed through the organization.
    pub blocks: usize,
    /// Simulation seed.
    pub seed: u64,
}

impl FloodConfig {
    /// The Fig. 4 shape at benchmark scale.
    pub fn fig04(blocks: usize) -> Self {
        FloodConfig {
            peers: 100,
            fout: 3,
            blocks,
            seed: 1,
        }
    }
}

/// Runs one flood to completion; returns (events processed, deliveries).
pub fn run_flood<P: BlockPayload>(cfg: FloodConfig) -> (u64, u64) {
    let mut sim = Simulation::new(
        FloodNet::<P>::new(cfg.peers, cfg.fout, cfg.blocks),
        NetworkConfig::lan(cfg.peers),
        cfg.seed,
    );
    sim.with_ctx(|_, ctx: &mut Ctx<'_, FloodMsg<P>, ()>| {
        for b in 1..=cfg.blocks as u64 {
            // The leader receives each block from the ordering service and
            // starts the flood; one wrap (allocation) per block.
            let payload = P::wrap(payload_block(b));
            ctx.send(NodeId(0), NodeId(0), FloodMsg(payload));
        }
    });
    sim.run_until_idle();
    let events = sim.events_processed();
    let delivered = sim.protocol().delivered;
    (events, delivered)
}

/// Wall-clock measurement of one flood run.
pub fn time_flood<P: BlockPayload>(cfg: FloodConfig) -> (std::time::Duration, u64) {
    let start = Instant::now();
    let (events, _) = run_flood::<P>(cfg);
    (start.elapsed(), events)
}

/// Measures both representations over `rounds` runs and returns
/// `(best owned wall-clock, best shared wall-clock)`. Best-of-N damps
/// scheduler noise; identical seeds keep the event schedules aligned.
pub fn compare(cfg: FloodConfig, rounds: usize) -> (std::time::Duration, std::time::Duration) {
    let mut owned = std::time::Duration::MAX;
    let mut shared = std::time::Duration::MAX;
    for _ in 0..rounds.max(1) {
        owned = owned.min(time_flood::<OwnedBlock>(cfg).0);
        shared = shared.min(time_flood::<SharedBlock>(cfg).0);
    }
    (owned, shared)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payload_block_is_paper_sized() {
        let b = payload_block(1);
        assert_eq!(b.txs.len(), TXS_PER_BLOCK);
        let size = b.wire_size();
        assert!((150_000..200_000).contains(&size), "block wire size {size}");
    }

    #[test]
    fn both_payloads_flood_identically() {
        let cfg = FloodConfig {
            peers: 30,
            fout: 3,
            blocks: 5,
            seed: 9,
        };
        let (events_owned, delivered_owned) = run_flood::<OwnedBlock>(cfg);
        let (events_shared, delivered_shared) = run_flood::<SharedBlock>(cfg);
        // Same seeds, same wire sizes, same RNG draws: the two payload
        // representations must replay the exact same execution.
        assert_eq!(events_owned, events_shared);
        assert_eq!(delivered_owned, delivered_shared);
        assert!(delivered_owned > 0);
    }

    #[test]
    fn flood_reaches_most_peers() {
        let cfg = FloodConfig {
            peers: 50,
            fout: 3,
            blocks: 3,
            seed: 4,
        };
        let (_, delivered) = run_flood::<SharedBlock>(cfg);
        // Infect-and-die reaches ~94% of peers in expectation (§IV).
        assert!(
            delivered as f64 >= 0.8 * 50.0 * 3.0,
            "delivered {delivered}"
        );
    }
}
