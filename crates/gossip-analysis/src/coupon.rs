//! Coupon-collector refinements of the miss-probability analysis.
//!
//! The appendix closes with: "A more precise analysis with extensions of
//! the coupon collector's problem is possible, but does not improve the
//! results for the networks we consider." This module provides that
//! analysis so the claim itself can be checked: the exact
//! inclusion–exclusion probability that `m` uniform digest transmissions
//! miss at least one of `n` peers, next to the paper's union bound
//! `n·(1 − 1/n)^m`.

use crate::epidemic::expected_digests;

/// The harmonic number `H_n = Σ_{k=1..n} 1/k`.
pub fn harmonic(n: usize) -> f64 {
    (1..=n).map(|k| 1.0 / k as f64).sum()
}

/// Expected number of uniform draws to collect all `n` coupons: `n·H_n`.
/// With digests landing on uniformly random peers, this is the expected
/// number of digest transmissions needed to inform everyone at least once.
pub fn expected_draws_to_cover(n: usize) -> f64 {
    n as f64 * harmonic(n)
}

/// Exact probability that `m` independent uniform draws over `n` coupons
/// miss at least one coupon, by inclusion–exclusion:
/// `P = Σ_{k=1..n} (−1)^{k+1} · C(n,k) · (1 − k/n)^m`.
///
/// Terms are evaluated in log space; the alternating series is truncated
/// once terms fall below `1e-30`, which happens within a handful of terms
/// for the parameter ranges of interest.
///
/// # Panics
///
/// Panics if `n` is zero.
pub fn coupon_miss_probability(n: usize, m: f64) -> f64 {
    assert!(n > 0, "need at least one coupon");
    if m <= 0.0 {
        return 1.0;
    }
    let nf = n as f64;
    let mut sum = 0.0f64;
    let mut ln_binom = 0.0f64; // ln C(n, 0) = 0
    for k in 1..=n {
        // ln C(n,k) = ln C(n,k-1) + ln((n-k+1)/k)
        ln_binom += ((nf - k as f64 + 1.0) / k as f64).ln();
        let survive = 1.0 - k as f64 / nf;
        if survive <= 0.0 {
            break;
        }
        let ln_term = ln_binom + m * survive.ln();
        let term = ln_term.exp();
        if k % 2 == 1 {
            sum += term;
        } else {
            sum -= term;
        }
        if term < 1e-30 && k > 2 {
            break;
        }
    }
    sum.clamp(0.0, 1.0)
}

/// The refined imperfect-dissemination probability: the exact coupon
/// missing probability evaluated at the epidemic's expected digest count
/// `m(n, f_out, ttl)` — the "extension of the coupon collector's problem"
/// the appendix mentions.
pub fn refined_pe(n: usize, fout: f64, ttl: u32) -> f64 {
    let m = expected_digests(n as f64, fout, ttl);
    coupon_miss_probability(n, m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::epidemic::imperfect_dissemination_probability;

    #[test]
    fn harmonic_known_values() {
        assert!((harmonic(1) - 1.0).abs() < 1e-12);
        assert!((harmonic(2) - 1.5).abs() < 1e-12);
        // H_100 ≈ 5.1874
        assert!((harmonic(100) - 5.187_377_517_639_621).abs() < 1e-9);
    }

    #[test]
    fn expected_draws_match_the_classic_result() {
        // n·H_n for n = 100 ≈ 518.7: about 519 uniform digests inform
        // 100 peers on expectation.
        assert!((expected_draws_to_cover(100) - 518.737_751_763_962).abs() < 1e-6);
    }

    #[test]
    fn zero_or_few_draws_always_miss() {
        assert_eq!(coupon_miss_probability(10, 0.0), 1.0);
        assert!(
            coupon_miss_probability(10, 5.0) > 0.99,
            "5 draws cannot cover 10 coupons"
        );
    }

    #[test]
    fn exact_probability_is_below_the_union_bound() {
        for &m in &[200.0, 500.0, 1000.0, 2000.0] {
            let exact = coupon_miss_probability(100, m);
            let bound = 100.0 * (1.0f64 - 0.01).powf(m);
            assert!(
                exact <= bound.min(1.0) + 1e-12,
                "m = {m}: exact {exact:.3e} vs bound {bound:.3e}"
            );
        }
    }

    #[test]
    fn exact_and_bound_converge_for_small_pe() {
        // In the regime the paper operates in, the union bound is tight —
        // the appendix's "does not improve the results" claim.
        let m = 2000.0;
        let exact = coupon_miss_probability(100, m);
        let bound = 100.0 * (1.0f64 - 0.01).powf(m);
        assert!(exact / bound > 0.9, "ratio {}", exact / bound);
    }

    #[test]
    fn refined_pe_confirms_the_papers_operating_points() {
        let refined = refined_pe(100, 4.0, 9);
        let bound = imperfect_dissemination_probability(100.0, 4.0, 9);
        assert!(refined <= bound);
        assert!(refined > bound / 10.0, "same order of magnitude");
        assert!(refined <= 1e-6, "the 1e-6 target certainly holds");
    }

    #[test]
    fn miss_probability_decreases_in_draws() {
        let mut prev = 1.0;
        for m in [10.0, 100.0, 300.0, 600.0, 1200.0] {
            let p = coupon_miss_probability(50, m);
            assert!(p <= prev + 1e-12);
            prev = p;
        }
    }

    #[test]
    fn monte_carlo_agrees_with_inclusion_exclusion() {
        use rand::{rngs::StdRng, RngExt, SeedableRng};
        let (n, m, trials) = (20usize, 60usize, 20_000usize);
        let mut rng = StdRng::seed_from_u64(3);
        let mut misses = 0usize;
        for _ in 0..trials {
            let mut hit = vec![false; n];
            for _ in 0..m {
                hit[rng.random_range(0..n)] = true;
            }
            if hit.iter().any(|h| !h) {
                misses += 1;
            }
        }
        let mc = misses as f64 / trials as f64;
        let exact = coupon_miss_probability(n, m as f64);
        assert!(
            (mc - exact).abs() < 0.02,
            "MC {mc:.4} vs exact {exact:.4} for n={n}, m={m}"
        );
    }
}
