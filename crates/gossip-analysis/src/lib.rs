//! # gossip-analysis — the paper's appendix, executable
//!
//! Analytic machinery behind the enhanced gossip protocol's guarantee:
//!
//! * [`lambert`] — the principal branch of the Lambert W function;
//! * [`epidemic`] — the ψ recursion, the logistic growth `X(t)`, the
//!   carrying capacity γ, the expected digest count `m`, and the
//!   imperfect-dissemination probability bound
//!   `p_e ≤ n·(1 − 1/n)^m`;
//! * [`ttl`] — TTL selection and the `(n, TTL)` lookup table peers deploy;
//! * [`coverage`] — the infect-and-die coverage analysis (the paper's
//!   "94 peers ± 2.6, 282 transmissions" claim) and Monte-Carlo simulators
//!   cross-checking the analytic bounds;
//! * [`coupon`] — the appendix's coupon-collector refinement: the exact
//!   inclusion–exclusion miss probability next to the union bound.
//!
//! ```
//! use gossip_analysis::{epidemic, ttl};
//! // How many rounds does a 100-peer network need for a 1e-6 guarantee?
//! let t = ttl::ttl_for(100, 4, 1e-6);
//! assert!(epidemic::imperfect_dissemination_probability(100.0, 4.0, t) <= 1e-6);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod coupon;
pub mod coverage;
pub mod epidemic;
pub mod lambert;
pub mod ttl;

pub use coupon::{coupon_miss_probability, refined_pe};
pub use coverage::{infect_and_die_expected_coverage, infect_and_die_stats, CoverageStats};
pub use epidemic::{carrying_capacity, expected_digests, imperfect_dissemination_probability, psi};
pub use lambert::lambert_w0;
pub use ttl::{ttl_for, TtlTable};
