//! The principal branch of the Lambert W function.
//!
//! The appendix expresses the carrying capacity of the infect-upon-contagion
//! epidemic through `W(-f·e^{-f})`, the largest solution of `x = W·e^W`.
//! Halley's method converges cubically from a branch-aware initial guess;
//! ten iterations reach machine precision over the whole domain.

/// `W_0(x)`: the principal branch of the Lambert W function, defined for
/// `x ≥ -1/e`.
///
/// # Panics
///
/// Panics if `x < -1/e` (outside the real domain) or `x` is NaN.
///
/// ```
/// use gossip_analysis::lambert::lambert_w0;
/// let omega = lambert_w0(1.0); // the omega constant
/// assert!((omega - 0.567_143_290_409_784).abs() < 1e-12);
/// ```
pub fn lambert_w0(x: f64) -> f64 {
    assert!(!x.is_nan(), "lambert_w0 of NaN");
    let min_x = -(-1.0f64).exp(); // -1/e
    assert!(
        x >= min_x - 1e-15,
        "lambert_w0 domain is x >= -1/e ≈ -0.3679, got {x}"
    );
    if x == 0.0 {
        return 0.0;
    }
    // Initial guess: series near the branch point, log asymptote for large
    // x, and the identity map near zero.
    let mut w = if x < -0.25 {
        // Near -1/e: W ≈ -1 + p - p²/3 with p = sqrt(2(e·x + 1)).
        let p = (2.0 * (std::f64::consts::E * x + 1.0)).max(0.0).sqrt();
        -1.0 + p - p * p / 3.0
    } else if x < 2.0 {
        // Small |x|: W ≈ x(1 - x + 1.5x²) truncated series.
        x * (1.0 - x + 1.5 * x * x).max(0.1)
    } else {
        // Large x: W ≈ ln x - ln ln x.
        let l = x.ln();
        l - l.ln().max(0.0)
    };
    // Halley iteration.
    for _ in 0..40 {
        let ew = w.exp();
        let f = w * ew - x;
        if f.abs() < 1e-16 * (1.0 + x.abs()) {
            break;
        }
        let denom = ew * (w + 1.0) - (w + 2.0) * f / (2.0 * w + 2.0);
        let step = f / denom;
        w -= step;
        if step.abs() < 1e-16 * (1.0 + w.abs()) {
            break;
        }
    }
    w
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_values() {
        assert_eq!(lambert_w0(0.0), 0.0);
        assert!((lambert_w0(1.0) - 0.567_143_290_409_784).abs() < 1e-12);
        assert!((lambert_w0(std::f64::consts::E) - 1.0).abs() < 1e-12);
        // W(-1/e) = -1 at the branch point.
        let x = -(-1.0f64).exp();
        assert!((lambert_w0(x) + 1.0).abs() < 1e-6);
    }

    #[test]
    fn identity_w_exp_w_round_trips() {
        for &x in &[
            -0.35, -0.3, -0.1, -0.01, 0.1, 0.5, 1.0, 2.0, 10.0, 100.0, 1e6,
        ] {
            let w = lambert_w0(x);
            let back = w * w.exp();
            assert!(
                (back - x).abs() <= 1e-9 * (1.0 + x.abs()),
                "W({x}) = {w}, W·e^W = {back}"
            );
        }
    }

    #[test]
    fn paper_arguments() {
        // W(-f e^{-f}) for the paper's fan-outs; the identity
        // c = (f + W(-f e^{-f}))/f must solve c = 1 - e^{-f c}.
        for &f in &[2.0f64, 3.0, 4.0, 6.0] {
            let w = lambert_w0(-f * (-f).exp());
            let c = (f + w) / f;
            assert!((c - (1.0 - (-f * c).exp())).abs() < 1e-10, "f = {f}");
            assert!(c > 0.0 && c < 1.0);
        }
        // Spot value: fraction for f = 2 is ≈ 0.7968.
        let w2 = lambert_w0(-2.0 * (-2.0f64).exp());
        assert!(((2.0 + w2) / 2.0 - 0.7968).abs() < 1e-3);
    }

    #[test]
    fn principal_branch_is_ge_minus_one() {
        for &x in &[-0.36, -0.2, -0.05, 0.0, 3.0] {
            assert!(lambert_w0(x) >= -1.0 - 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "domain")]
    fn domain_violation_panics() {
        lambert_w0(-1.0);
    }
}
