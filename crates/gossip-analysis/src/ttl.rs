//! TTL selection: from a target miss probability to a deployable lookup
//! table.
//!
//! "TTL varies slowly with n; we can therefore store a small number of TTL
//! values for (n, p_e) pairs in a lookup table. Peers can adjust TTL using
//! the lowest upper bound for the number of peers appearing in the table."

use serde::{Deserialize, Serialize};

use crate::epidemic::imperfect_dissemination_probability;

/// The smallest TTL whose analytic miss probability is at most `target_pe`
/// for a network of `n` peers with fan-out `fout`.
///
/// # Panics
///
/// Panics if the target cannot be met within 10 000 rounds (it always can
/// for `fout ≥ 2` and sane targets).
///
/// ```
/// use gossip_analysis::ttl::ttl_for;
/// // The paper's two operating points at n = 100, p_e = 1e-6.
/// assert!(ttl_for(100, 4, 1e-6) <= 9);
/// assert!(ttl_for(100, 2, 1e-6) <= 19);
/// ```
pub fn ttl_for(n: usize, fout: usize, target_pe: f64) -> u32 {
    assert!(n >= 2, "need at least two peers");
    assert!(fout >= 2, "the push phase needs fout >= 2 to saturate");
    assert!(
        target_pe > 0.0 && target_pe < 1.0,
        "target_pe must be in (0, 1)"
    );
    for ttl in 1..10_000 {
        if imperfect_dissemination_probability(n as f64, fout as f64, ttl) <= target_pe {
            return ttl;
        }
    }
    panic!("no TTL below 10000 meets pe <= {target_pe} for n = {n}, fout = {fout}");
}

/// A deployable `(n, TTL)` lookup table for one `(fout, p_e)` pair.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TtlTable {
    fout: usize,
    target_pe: f64,
    /// `(max_n, ttl)` entries with strictly increasing `max_n`.
    entries: Vec<(usize, u32)>,
}

impl TtlTable {
    /// Builds a table over the given network-size grid.
    ///
    /// # Panics
    ///
    /// Panics on an empty or unsorted grid, or invalid parameters.
    pub fn build(fout: usize, target_pe: f64, sizes: &[usize]) -> Self {
        assert!(!sizes.is_empty(), "the grid needs at least one size");
        assert!(
            sizes.windows(2).all(|w| w[0] < w[1]),
            "grid sizes must be strictly increasing"
        );
        let entries = sizes
            .iter()
            .map(|&n| (n, ttl_for(n, fout, target_pe)))
            .collect();
        TtlTable {
            fout,
            target_pe,
            entries,
        }
    }

    /// The default grid used in examples and benches: the paper's n = 100
    /// bracketed by one order of magnitude each way.
    pub fn default_grid() -> &'static [usize] {
        &[10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000]
    }

    /// The fan-out this table was built for.
    pub fn fout(&self) -> usize {
        self.fout
    }

    /// The miss-probability target this table guarantees.
    pub fn target_pe(&self) -> f64 {
        self.target_pe
    }

    /// The table rows as `(max_n, ttl)` pairs.
    pub fn entries(&self) -> &[(usize, u32)] {
        &self.entries
    }

    /// TTL for a network of `n` peers: the entry of the smallest grid size
    /// `≥ n` (the "lowest upper bound" rule). `None` if `n` exceeds the
    /// grid.
    pub fn lookup(&self, n: usize) -> Option<u32> {
        self.entries
            .iter()
            .find(|(max_n, _)| *max_n >= n)
            .map(|(_, ttl)| *ttl)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_operating_points() {
        let t4 = ttl_for(100, 4, 1e-6);
        let t2 = ttl_for(100, 2, 1e-6);
        assert!((7..=9).contains(&t4), "fout=4 TTL = {t4} (paper: 9)");
        assert!((15..=19).contains(&t2), "fout=2 TTL = {t2} (paper: 19)");
        // pe = 1e-12 with fout = 4 needs at most the paper's TTL = 12.
        assert!(ttl_for(100, 4, 1e-12) <= 12);
    }

    #[test]
    fn ttl_grows_with_n_and_strictness() {
        assert!(ttl_for(1000, 4, 1e-6) >= ttl_for(100, 4, 1e-6));
        assert!(ttl_for(100, 4, 1e-12) > ttl_for(100, 4, 1e-3));
        assert!(ttl_for(100, 2, 1e-6) > ttl_for(100, 6, 1e-6));
    }

    #[test]
    fn ttl_varies_slowly_with_n() {
        // One order of magnitude in n costs only a few extra rounds —
        // the property that makes a small lookup table sufficient.
        let t100 = ttl_for(100, 4, 1e-6);
        let t1000 = ttl_for(1000, 4, 1e-6);
        assert!(t1000 - t100 <= 4, "t(1000) = {t1000}, t(100) = {t100}");
    }

    #[test]
    fn table_lookup_uses_lowest_upper_bound() {
        let table = TtlTable::build(4, 1e-6, &[50, 100, 1000]);
        assert_eq!(table.lookup(30), table.lookup(50));
        assert_eq!(table.lookup(100), Some(ttl_for(100, 4, 1e-6)));
        assert_eq!(table.lookup(101), Some(ttl_for(1000, 4, 1e-6)));
        assert_eq!(table.lookup(1001), None);
    }

    #[test]
    fn table_entries_are_monotone() {
        let table = TtlTable::build(4, 1e-6, TtlTable::default_grid());
        let ttls: Vec<u32> = table.entries().iter().map(|(_, t)| *t).collect();
        assert!(
            ttls.windows(2).all(|w| w[0] <= w[1]),
            "TTL must grow with n: {ttls:?}"
        );
        assert_eq!(table.fout(), 4);
        assert_eq!(table.target_pe(), 1e-6);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_grid_panics() {
        TtlTable::build(4, 1e-6, &[100, 50]);
    }
}
