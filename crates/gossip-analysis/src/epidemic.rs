//! Epidemic growth of the infect-upon-contagion push phase.
//!
//! Implements the appendix end to end: the ψ recursion bounding the
//! expected number of peers reached per round, the logistic closed form
//! `X(t)`, the carrying capacity γ via Lambert W, the expected digest count
//! `m`, and the imperfect-dissemination probability bound
//! `p_e ≤ n·(1 − 1/n)^m`.

use crate::lambert::lambert_w0;

/// ψ(r): the appendix's recursive upper bound on `E[X_r]`, the expected
/// number of peers receiving at least one push digest in round `r`.
/// `ψ(0) = 1`, `ψ(r+1) = n·(1 − (1 − 1/n)^{f·ψ(r)})`.
pub fn psi(n: f64, fout: f64, r: u32) -> f64 {
    assert!(n >= 2.0 && fout >= 1.0, "need n >= 2 and fout >= 1");
    let q = 1.0 - 1.0 / n;
    let mut value = 1.0;
    for _ in 0..r {
        value = n * (1.0 - q.powf(fout * value));
    }
    value
}

/// γ: the carrying capacity of the epidemic,
/// `γ = n·(f + W(−f·e^{−f}))/f` (appendix, via Corless et al.).
/// Equivalently `n·c` where `c` solves `c = 1 − e^{−f·c}`.
pub fn carrying_capacity(n: f64, fout: f64) -> f64 {
    assert!(fout > 1.0, "the epidemic needs fout > 1 to take off");
    let w = lambert_w0(-fout * (-fout).exp());
    n * (fout + w) / fout
}

/// `X(t)`: the logistic solution of the appendix's differential equation,
/// `X(t) = γ·f^t / (γ + f^t − 1)` with `X(0) = 1`.
pub fn logistic_x(n: f64, fout: f64, t: f64) -> f64 {
    let gamma = carrying_capacity(n, fout);
    let ft = fout.powf(t);
    gamma * ft / (gamma + ft - 1.0)
}

/// `m`: the expected number of push digests transmitted over `ttl` rounds,
/// `m = f·Σ_{i=0}^{ttl−1} ψ(i)`.
pub fn expected_digests(n: f64, fout: f64, ttl: u32) -> f64 {
    let q = 1.0 - 1.0 / n;
    let mut value = 1.0;
    let mut sum = 0.0;
    for _ in 0..ttl {
        sum += value;
        value = n * (1.0 - q.powf(fout * value));
    }
    fout * sum
}

/// The appendix's estimate of rounds needed to transmit `m` digests:
/// `r ≥ log_f(γ·f^{m/(γ·f)} − γ + 1) + 1`.
pub fn rounds_for_digests(n: f64, fout: f64, m: f64) -> f64 {
    let gamma = carrying_capacity(n, fout);
    let inner = gamma * fout.powf(m / (gamma * fout)) - gamma + 1.0;
    inner.ln() / fout.ln() + 1.0
}

/// `p_e(n, f, ttl)`: upper bound on the probability that the push phase
/// misses at least one peer, `p_e ≤ n·(1 − 1/n)^m`, clamped to `[0, 1]`.
///
/// ```
/// use gossip_analysis::epidemic::imperfect_dissemination_probability;
/// // The paper's two operating points both guarantee p_e ≤ 1e-6 at n=100.
/// assert!(imperfect_dissemination_probability(100.0, 4.0, 9) <= 1e-6);
/// assert!(imperfect_dissemination_probability(100.0, 2.0, 19) <= 1e-6);
/// ```
pub fn imperfect_dissemination_probability(n: f64, fout: f64, ttl: u32) -> f64 {
    let m = expected_digests(n, fout, ttl);
    let q = 1.0 - 1.0 / n;
    // n·q^m in log space to survive m in the thousands.
    let log_pe = n.ln() + m * q.ln();
    log_pe.exp().min(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn psi_is_monotone_and_bounded() {
        let mut prev = psi(100.0, 4.0, 0);
        assert_eq!(prev, 1.0);
        for r in 1..30 {
            let cur = psi(100.0, 4.0, r);
            assert!(cur >= prev - 1e-12, "ψ must be monotonically increasing");
            assert!(cur <= 100.0, "ψ is bounded by n");
            prev = cur;
        }
    }

    #[test]
    fn psi_converges_to_carrying_capacity() {
        for &f in &[2.0, 3.0, 4.0] {
            let gamma = carrying_capacity(100.0, f);
            let limit = psi(100.0, f, 200);
            assert!(
                (limit - gamma).abs() < 0.5,
                "ψ_∞ = {limit:.2} vs γ = {gamma:.2} for f = {f}"
            );
        }
    }

    #[test]
    fn carrying_capacity_matches_known_fractions() {
        // c = 1 − e^{−fc}: c(2) ≈ 0.7968, c(3) ≈ 0.9405, c(4) ≈ 0.9802.
        assert!((carrying_capacity(100.0, 2.0) - 79.68).abs() < 0.05);
        assert!((carrying_capacity(100.0, 3.0) - 94.05).abs() < 0.05);
        assert!((carrying_capacity(100.0, 4.0) - 98.02).abs() < 0.05);
    }

    #[test]
    fn logistic_starts_at_one_and_saturates() {
        assert!((logistic_x(100.0, 4.0, 0.0) - 1.0).abs() < 1e-9);
        let gamma = carrying_capacity(100.0, 4.0);
        assert!((logistic_x(100.0, 4.0, 50.0) - gamma).abs() < 1e-6);
        // ψ dominates X (the appendix proves ψ(r) ≥ X(r) for f ≥ 2).
        for r in 0..12 {
            assert!(
                psi(100.0, 4.0, r) >= logistic_x(100.0, 4.0, f64::from(r)) - 1e-9,
                "round {r}"
            );
        }
    }

    #[test]
    fn paper_operating_points_meet_the_target() {
        let pe_f4 = imperfect_dissemination_probability(100.0, 4.0, 9);
        let pe_f2 = imperfect_dissemination_probability(100.0, 2.0, 19);
        assert!(pe_f4 <= 1e-6, "fout=4, TTL=9 gives pe = {pe_f4:.3e}");
        assert!(pe_f2 <= 1e-6, "fout=2, TTL=19 gives pe = {pe_f2:.3e}");
        // And not absurdly below the target either (same regime the paper
        // reports; the ψ bound is slightly conservative).
        assert!(pe_f4 >= 1e-10);
        assert!(pe_f2 >= 1e-10);
        // "Increasing TTL from 9 to 12 with fout = 4 leads to pe = 1e-12."
        let pe_f4_12 = imperfect_dissemination_probability(100.0, 4.0, 12);
        assert!(
            pe_f4_12 <= 1e-12,
            "fout=4, TTL=12 gives pe = {pe_f4_12:.3e}"
        );
    }

    #[test]
    fn pe_decreases_with_ttl_and_fout() {
        let mut prev = 1.0;
        for ttl in 1..15 {
            let pe = imperfect_dissemination_probability(100.0, 4.0, ttl);
            assert!(pe <= prev + 1e-15, "pe must shrink as TTL grows");
            prev = pe;
        }
        let pe2 = imperfect_dissemination_probability(100.0, 2.0, 10);
        let pe4 = imperfect_dissemination_probability(100.0, 4.0, 10);
        assert!(pe4 < pe2, "larger fan-out reaches peers faster");
    }

    #[test]
    fn pe_is_clamped_to_one() {
        assert_eq!(imperfect_dissemination_probability(100.0, 2.0, 1), 1.0);
    }

    #[test]
    fn expected_digests_grows_linearly_in_fout_early() {
        let m1 = expected_digests(100.0, 4.0, 1);
        assert!(
            (m1 - 4.0).abs() < 1e-9,
            "one round: f digests from one peer"
        );
        let m2 = expected_digests(100.0, 4.0, 2);
        assert!(
            m2 > m1 + 4.0,
            "round two adds at least the first wave's recipients"
        );
    }

    #[test]
    fn rounds_estimate_is_consistent_with_digest_count() {
        // Feeding m(ttl) back should give roughly ttl rounds.
        for ttl in [6u32, 9, 12] {
            let m = expected_digests(100.0, 4.0, ttl);
            let r = rounds_for_digests(100.0, 4.0, m);
            assert!(
                (r - f64::from(ttl)).abs() <= 2.0,
                "ttl = {ttl}: estimated {r:.2} rounds"
            );
        }
    }
}
