//! Coverage analysis of the *original* infect-and-die push, plus Monte-
//! Carlo simulators for both push protocols.
//!
//! Section IV of the paper: "with a network of n = 100 peers and f_out = 3,
//! infect-and-die push disseminates each block to an average of 94 peers
//! with a standard deviation of 2.6, while transmitting each block in full
//! 282 times." These functions reproduce all three numbers.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Expected final coverage of infect-and-die push: the fixed point of
/// `c = n·(1 − (1 − 1/n)^{f·c})` (every informed peer transmits exactly
/// `f` copies, so transmissions = `f·c`).
pub fn infect_and_die_expected_coverage(n: f64, fout: f64) -> f64 {
    let q = 1.0 - 1.0 / n;
    // Iterate from full coverage; the map is monotone and contracts onto
    // the nontrivial fixed point.
    let mut c = n;
    for _ in 0..10_000 {
        let next = n * (1.0 - q.powf(fout * c));
        if (next - c).abs() < 1e-12 {
            return next;
        }
        c = next;
    }
    c
}

/// Sample statistics from repeated Monte-Carlo trials.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoverageStats {
    /// Mean informed peers per trial.
    pub mean: f64,
    /// Standard deviation of informed peers.
    pub std_dev: f64,
    /// Mean full-block transmissions per trial.
    pub mean_transmissions: f64,
    /// Fraction of trials in which at least one peer stayed uninformed.
    pub miss_fraction: f64,
}

/// One infect-and-die trial: returns `(informed peers, transmissions)`.
///
/// Peer 0 starts informed (the leader); every newly informed peer pushes to
/// `fout` distinct random peers (excluding itself) exactly once.
pub fn simulate_infect_and_die(n: usize, fout: usize, rng: &mut StdRng) -> (usize, usize) {
    assert!(n >= 2 && fout >= 1);
    let mut informed = vec![false; n];
    informed[0] = true;
    let mut frontier = vec![0usize];
    let mut count = 1usize;
    let mut transmissions = 0usize;
    while let Some(sender) = frontier.pop() {
        for target in sample_distinct(n, fout, sender, rng) {
            transmissions += 1;
            if !informed[target] {
                informed[target] = true;
                count += 1;
                frontier.push(target);
            }
        }
    }
    (count, transmissions)
}

/// One infect-upon-contagion trial over `ttl` rounds: returns the number of
/// informed peers (digest receivers plus the initial gossiper).
///
/// Matches the appendix's model: round `r`'s receivers each send `fout`
/// digests in round `r + 1`; a peer reached in several rounds sends once
/// per round in which it was reached (distinct counters).
pub fn simulate_infect_upon_contagion(n: usize, fout: usize, ttl: u32, rng: &mut StdRng) -> usize {
    assert!(n >= 2 && fout >= 1 && ttl >= 1);
    let mut informed = vec![false; n];
    informed[0] = true;
    // receivers of the current round's digests (deduplicated per round).
    let mut current: Vec<usize> = vec![0];
    for _ in 0..ttl {
        let mut next_flags = vec![false; n];
        let mut next = Vec::new();
        for &sender in &current {
            for target in sample_distinct(n, fout, sender, rng) {
                if !informed[target] {
                    informed[target] = true;
                }
                if !next_flags[target] {
                    next_flags[target] = true;
                    next.push(target);
                }
            }
        }
        current = next;
        if current.is_empty() {
            break;
        }
    }
    informed.iter().filter(|i| **i).count()
}

/// Runs `trials` infect-and-die experiments and aggregates statistics.
pub fn infect_and_die_stats(n: usize, fout: usize, trials: usize, seed: u64) -> CoverageStats {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut coverages = Vec::with_capacity(trials);
    let mut transmissions = 0usize;
    let mut misses = 0usize;
    for _ in 0..trials {
        let (covered, sent) = simulate_infect_and_die(n, fout, &mut rng);
        transmissions += sent;
        if covered < n {
            misses += 1;
        }
        coverages.push(covered as f64);
    }
    let mean = coverages.iter().sum::<f64>() / trials as f64;
    let var = coverages
        .iter()
        .map(|c| (c - mean) * (c - mean))
        .sum::<f64>()
        / trials as f64;
    CoverageStats {
        mean,
        std_dev: var.sqrt(),
        mean_transmissions: transmissions as f64 / trials as f64,
        miss_fraction: misses as f64 / trials as f64,
    }
}

/// Estimates the infect-upon-contagion miss probability by Monte Carlo
/// (only feasible for parameter points where `p_e` is not astronomically
/// small; the analytic bound covers the rest).
pub fn infect_upon_contagion_miss_rate(
    n: usize,
    fout: usize,
    ttl: u32,
    trials: usize,
    seed: u64,
) -> f64 {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut misses = 0usize;
    for _ in 0..trials {
        if simulate_infect_upon_contagion(n, fout, ttl, &mut rng) < n {
            misses += 1;
        }
    }
    misses as f64 / trials as f64
}

/// Draws `k` distinct peers from `0..n`, excluding `sender`.
fn sample_distinct(n: usize, k: usize, sender: usize, rng: &mut StdRng) -> Vec<usize> {
    let k = k.min(n - 1);
    let mut picked = Vec::with_capacity(k);
    while picked.len() < k {
        let t = rng.random_range(0..n);
        if t != sender && !picked.contains(&t) {
            picked.push(t);
        }
    }
    picked
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::epidemic::imperfect_dissemination_probability;

    #[test]
    fn fixed_point_matches_the_papers_94() {
        let c = infect_and_die_expected_coverage(100.0, 3.0);
        assert!((c - 94.0).abs() < 0.5, "expected ≈94, got {c:.2}");
        // Transmissions = f·c ≈ 282.
        assert!((3.0 * c - 282.0).abs() < 2.0);
    }

    #[test]
    fn monte_carlo_matches_the_papers_mean_std_and_transmissions() {
        let stats = infect_and_die_stats(100, 3, 4000, 42);
        assert!((stats.mean - 94.0).abs() < 1.0, "mean = {:.2}", stats.mean);
        assert!(
            (stats.std_dev - 2.6).abs() < 0.8,
            "std = {:.2}",
            stats.std_dev
        );
        assert!(
            (stats.mean_transmissions - 282.0).abs() < 4.0,
            "transmissions = {:.1}",
            stats.mean_transmissions
        );
        // Infect-and-die essentially always misses someone at n = 100.
        assert!(stats.miss_fraction > 0.9);
    }

    #[test]
    fn fixed_point_tracks_fan_out() {
        let c2 = infect_and_die_expected_coverage(100.0, 2.0);
        let c4 = infect_and_die_expected_coverage(100.0, 4.0);
        assert!(c2 < c4);
        assert!((c2 - 79.7).abs() < 0.5);
        assert!((c4 - 98.0).abs() < 0.5);
    }

    #[test]
    fn infect_upon_contagion_reaches_everyone_at_paper_parameters() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..200 {
            assert_eq!(simulate_infect_upon_contagion(100, 4, 9, &mut rng), 100);
        }
        let mut rng = StdRng::seed_from_u64(8);
        for _ in 0..200 {
            assert_eq!(simulate_infect_upon_contagion(100, 2, 19, &mut rng), 100);
        }
    }

    #[test]
    fn monte_carlo_miss_rate_tracks_the_analytic_bound() {
        // Pick a TTL where pe is measurable (~1e-2): fout = 4, TTL = 5.
        let bound = imperfect_dissemination_probability(100.0, 4.0, 5);
        assert!(
            bound > 1e-3 && bound < 1.0,
            "test needs a measurable pe, got {bound:.3e}"
        );
        let mc = infect_upon_contagion_miss_rate(100, 4, 5, 4000, 11);
        assert!(
            mc <= bound * 3.0,
            "MC miss rate {mc:.4} far above the analytic bound {bound:.4}"
        );
        assert!(
            mc >= bound / 100.0,
            "MC miss rate {mc:.6} implausibly below the bound {bound:.4}"
        );
    }

    #[test]
    fn short_ttl_misses_peers() {
        let mut rng = StdRng::seed_from_u64(3);
        let reached = simulate_infect_upon_contagion(100, 2, 2, &mut rng);
        assert!(reached < 20, "2 rounds at fout=2 cannot inform 100 peers");
    }

    #[test]
    fn sample_distinct_excludes_sender_and_duplicates() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            let s = sample_distinct(10, 4, 3, &mut rng);
            assert_eq!(s.len(), 4);
            assert!(!s.contains(&3));
            let mut d = s.clone();
            d.sort_unstable();
            d.dedup();
            assert_eq!(d.len(), 4);
        }
        // k capped at n-1.
        let s = sample_distinct(4, 10, 0, &mut rng);
        assert_eq!(s.len(), 3);
    }
}
