//! # fabric-workload — the paper's workloads
//!
//! Schedules ([`schedule`]) and client logic ([`client`]) for the two
//! experiments of the evaluation:
//!
//! * the **dissemination workload** (§V-A, Figs. 4–14): 50 000 padded
//!   transactions producing 1 000 blocks of ≈160 KB, one every ≈1.5 s;
//! * the **conflict workload** (§V-D, Table II): 10 000 increments of 100
//!   shared counters at 5 tx/s, a fresh random permutation per round, a
//!   single endorsing peer — every validation-time conflict is a lost
//!   increment, so the final counter sum counts the damage.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod client;
pub mod schedule;

pub use client::endorse_invocation;
pub use schedule::{
    increment_schedule, payload_schedule, ChaincodeKind, IncrementWorkload, PayloadWorkload,
    ScheduledInvocation,
};
