//! Transaction schedules: what the client submits, and when.
//!
//! Two generators reproduce the paper's workloads:
//!
//! * [`payload_schedule`] — §V-A: 50 000 sequential transactions sized so
//!   that a 50-transaction block of ≈160 KB is cut roughly every 1.5 s
//!   (1 000 blocks total);
//! * [`increment_schedule`] — §V-D: 100 integer counters incremented 100
//!   times each (10 000 transactions) at a fixed 5 tx/s, with a fresh
//!   random permutation of the counter order in every round.

use desim::{Duration, Time};
use fabric_types::ids::ChannelId;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

/// Which chaincode an invocation targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ChaincodeKind {
    /// [`fabric_ledger::IncrementChaincode`] — the conflict workload.
    Increment,
    /// [`fabric_ledger::PayloadChaincode`] — the dissemination workload.
    Payload,
}

/// One scheduled chaincode invocation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScheduledInvocation {
    /// When the client issues the proposal.
    pub at: Time,
    /// The channel the invocation targets: its endorsers simulate the
    /// chaincode, its ordering chain batches the transaction, its members
    /// receive the cut block. Generators produce [`ChannelId::DEFAULT`];
    /// retarget with [`ScheduledInvocation::on_channel`] /
    /// [`retarget_schedule`].
    pub channel: ChannelId,
    /// Target chaincode.
    pub chaincode: ChaincodeKind,
    /// Invocation arguments.
    pub args: Vec<String>,
    /// Wire padding applied to the resulting transaction.
    pub padding: u32,
}

impl ScheduledInvocation {
    /// Retargets the invocation at `channel`.
    #[must_use]
    pub fn on_channel(mut self, channel: ChannelId) -> Self {
        self.channel = channel;
        self
    }
}

/// Retargets a whole schedule at `channel` (workload generators emit
/// [`ChannelId::DEFAULT`]).
pub fn retarget_schedule(
    schedule: Vec<ScheduledInvocation>,
    channel: ChannelId,
) -> Vec<ScheduledInvocation> {
    schedule
        .into_iter()
        .map(|s| s.on_channel(channel))
        .collect()
}

/// Merges per-channel schedules into one time-sorted stream — the
/// multi-channel client workload. The merge is stable: invocations due at
/// the same instant keep their input-schedule order.
pub fn merge_schedules(schedules: Vec<Vec<ScheduledInvocation>>) -> Vec<ScheduledInvocation> {
    let mut merged: Vec<ScheduledInvocation> = schedules.into_iter().flatten().collect();
    merged.sort_by_key(|s| s.at);
    merged
}

/// Parameters of the dissemination workload (§V-A).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PayloadWorkload {
    /// Total transactions to issue (paper: 50 000).
    pub total_txs: usize,
    /// Issue rate in transactions per second (paper: one 50-tx block per
    /// ≈1.5 s ⇒ ≈33.3 tx/s).
    pub rate_per_sec: f64,
    /// Per-transaction wire padding; 50 × ≈3.2 KB ≈ the paper's 160 KB
    /// blocks.
    pub tx_padding: u32,
}

impl Default for PayloadWorkload {
    fn default() -> Self {
        PayloadWorkload {
            total_txs: 50_000,
            rate_per_sec: 50.0 / 1.5,
            tx_padding: 3_100,
        }
    }
}

impl PayloadWorkload {
    /// A scaled-down copy with `total_txs` transactions (same rate/sizes),
    /// for tests and quick examples.
    pub fn shortened(total_txs: usize) -> Self {
        PayloadWorkload {
            total_txs,
            ..Default::default()
        }
    }
}

/// Parameters of the conflict workload (§V-D).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IncrementWorkload {
    /// Number of distinct counters (paper: 100).
    pub keys: usize,
    /// Rounds; each round increments every counter once (paper: 100).
    pub rounds: usize,
    /// Issue rate in transactions per second (paper: 5).
    pub rate_per_sec: f64,
}

impl Default for IncrementWorkload {
    fn default() -> Self {
        IncrementWorkload {
            keys: 100,
            rounds: 100,
            rate_per_sec: 5.0,
        }
    }
}

impl IncrementWorkload {
    /// Total transactions the schedule will contain.
    pub fn total_txs(&self) -> usize {
        self.keys * self.rounds
    }
}

fn issue_time(index: usize, rate_per_sec: f64) -> Time {
    Time::ZERO + Duration::from_secs_f64(index as f64 / rate_per_sec)
}

/// Generates the dissemination schedule: conflict-free payload writes, one
/// unique delta row per transaction.
pub fn payload_schedule(cfg: &PayloadWorkload) -> Vec<ScheduledInvocation> {
    assert!(cfg.rate_per_sec > 0.0, "rate must be positive");
    (0..cfg.total_txs)
        .map(|i| ScheduledInvocation {
            at: issue_time(i, cfg.rate_per_sec),
            channel: ChannelId::DEFAULT,
            chaincode: ChaincodeKind::Payload,
            args: vec![format!("row{i}")],
            padding: cfg.tx_padding,
        })
        .collect()
}

/// Generates the conflict schedule: `rounds` random permutations of the
/// counter keys, issued back to back at the configured rate. Deterministic
/// in `seed`.
pub fn increment_schedule(cfg: &IncrementWorkload, seed: u64) -> Vec<ScheduledInvocation> {
    assert!(cfg.rate_per_sec > 0.0, "rate must be positive");
    assert!(cfg.keys > 0 && cfg.rounds > 0, "empty workload");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut order: Vec<usize> = (0..cfg.keys).collect();
    let mut out = Vec::with_capacity(cfg.total_txs());
    let mut index = 0usize;
    for _ in 0..cfg.rounds {
        // Fresh Fisher–Yates permutation per round, as in the paper.
        for i in (1..order.len()).rev() {
            let j = rng.random_range(0..=i);
            order.swap(i, j);
        }
        for &key in &order {
            out.push(ScheduledInvocation {
                at: issue_time(index, cfg.rate_per_sec),
                channel: ChannelId::DEFAULT,
                chaincode: ChaincodeKind::Increment,
                args: vec![format!("counter{key}")],
                padding: 64,
            });
            index += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn payload_schedule_matches_paper_scale() {
        let cfg = PayloadWorkload::default();
        let sched = payload_schedule(&cfg);
        assert_eq!(sched.len(), 50_000);
        // 50 000 tx at one 50-tx block per 1.5 s span 1 500 s.
        let last = sched.last().unwrap().at;
        assert!((last.as_secs_f64() - 1_500.0).abs() < 1.0);
        // All rows unique (conflict-free by construction).
        let rows: HashSet<&String> = sched.iter().map(|s| &s.args[0]).collect();
        assert_eq!(rows.len(), 50_000);
    }

    #[test]
    fn payload_tx_padding_yields_160kb_blocks() {
        let cfg = PayloadWorkload::default();
        // 50 transactions of (padding + framing ≈ 100 B) ≈ 160 KB.
        let block_bytes = 50 * (cfg.tx_padding as usize + 100);
        assert!(
            (150_000..=170_000).contains(&block_bytes),
            "got {block_bytes}"
        );
    }

    #[test]
    fn increment_schedule_is_rounds_of_permutations() {
        let cfg = IncrementWorkload {
            keys: 10,
            rounds: 5,
            rate_per_sec: 5.0,
        };
        let sched = increment_schedule(&cfg, 42);
        assert_eq!(sched.len(), 50);
        for round in 0..5 {
            let keys: HashSet<&String> = sched[round * 10..(round + 1) * 10]
                .iter()
                .map(|s| &s.args[0])
                .collect();
            assert_eq!(keys.len(), 10, "round {round} must touch every key once");
        }
    }

    #[test]
    fn increment_schedule_paces_at_the_configured_rate() {
        let cfg = IncrementWorkload::default();
        let sched = increment_schedule(&cfg, 1);
        assert_eq!(sched.len(), 10_000);
        let dt = sched[1].at.since(sched[0].at);
        assert_eq!(
            dt,
            Duration::from_millis(200),
            "5 tx/s means one every 200 ms"
        );
        let last = sched.last().unwrap().at;
        assert!((last.as_secs_f64() - 1_999.8).abs() < 0.5);
    }

    #[test]
    fn increment_schedule_is_deterministic_in_seed() {
        let cfg = IncrementWorkload {
            keys: 20,
            rounds: 3,
            rate_per_sec: 5.0,
        };
        assert_eq!(increment_schedule(&cfg, 7), increment_schedule(&cfg, 7));
        assert_ne!(increment_schedule(&cfg, 7), increment_schedule(&cfg, 8));
    }

    #[test]
    fn rounds_are_permuted_differently() {
        let cfg = IncrementWorkload {
            keys: 50,
            rounds: 2,
            rate_per_sec: 5.0,
        };
        let sched = increment_schedule(&cfg, 3);
        let round1: Vec<&String> = sched[..50].iter().map(|s| &s.args[0]).collect();
        let round2: Vec<&String> = sched[50..].iter().map(|s| &s.args[0]).collect();
        assert_ne!(
            round1, round2,
            "identical permutations are astronomically unlikely"
        );
    }

    #[test]
    fn schedules_are_time_sorted() {
        let sched = payload_schedule(&PayloadWorkload::shortened(100));
        assert!(sched.windows(2).all(|w| w[0].at <= w[1].at));
        let sched = increment_schedule(&IncrementWorkload::default(), 1);
        assert!(sched.windows(2).all(|w| w[0].at <= w[1].at));
    }

    #[test]
    fn generators_target_the_default_channel() {
        let sched = payload_schedule(&PayloadWorkload::shortened(10));
        assert!(sched.iter().all(|s| s.channel == ChannelId::DEFAULT));
    }

    #[test]
    fn retarget_and_merge_build_a_multichannel_workload() {
        let ch0 = payload_schedule(&PayloadWorkload::shortened(6));
        let ch1 = retarget_schedule(
            payload_schedule(&PayloadWorkload {
                total_txs: 4,
                rate_per_sec: 2.0,
                tx_padding: 100,
            }),
            ChannelId(1),
        );
        assert!(ch1.iter().all(|s| s.channel == ChannelId(1)));
        let merged = merge_schedules(vec![ch0.clone(), ch1.clone()]);
        assert_eq!(merged.len(), 10);
        assert!(merged.windows(2).all(|w| w[0].at <= w[1].at));
        // Stable at equal instants: both schedules start at t = 0 and the
        // ch0 entry must come first.
        assert_eq!(merged[0].channel, ChannelId::DEFAULT);
        assert_eq!(merged[1].channel, ChannelId(1));
        // Every input invocation survives the merge.
        let ch1_count = merged.iter().filter(|s| s.channel == ChannelId(1)).count();
        assert_eq!(ch1_count, 4);
    }
}
