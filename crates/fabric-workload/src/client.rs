//! Client-side transaction assembly: simulate at an endorser, sign, build
//! the proposal the orderer will batch.

use fabric_ledger::chaincode::{
    Chaincode, ChaincodeError, ChaincodeInput, IncrementChaincode, PayloadChaincode,
};
use fabric_ledger::state::StateDb;
use fabric_types::ids::{ClientId, PeerId, TxId};
use fabric_types::msp::Msp;
use fabric_types::transaction::Transaction;

use crate::schedule::{ChaincodeKind, ScheduledInvocation};

/// Simulates `invocation` against `endorser_state` (the endorser's
/// committed world state), signs the result as `endorser`, and assembles
/// the transaction proposal.
///
/// This is the client↔endorser round trip of Fabric's execute phase,
/// collapsed into a function: the experiment layer accounts its latency
/// separately.
///
/// # Errors
///
/// Propagates [`ChaincodeError`] from simulation; returns an error if the
/// endorser is not enrolled in the MSP.
pub fn endorse_invocation(
    invocation: &ScheduledInvocation,
    tx_id: TxId,
    client: ClientId,
    endorser: PeerId,
    endorser_state: &StateDb,
    msp: &Msp,
) -> Result<Transaction, ChaincodeError> {
    let input = ChaincodeInput::new(invocation.args.iter().cloned());
    let (name, rwset) = match invocation.chaincode {
        ChaincodeKind::Increment => {
            let cc = IncrementChaincode;
            (cc.name().to_owned(), cc.simulate(&input, endorser_state)?)
        }
        ChaincodeKind::Payload => {
            let cc = PayloadChaincode::new(invocation.padding as usize);
            (cc.name().to_owned(), cc.simulate(&input, endorser_state)?)
        }
    };
    let mut tx = Transaction::new(tx_id, name, client, rwset).with_padding(invocation.padding);
    if !tx.endorse(msp, endorser) {
        return Err(ChaincodeError::BadArguments(format!(
            "endorser {endorser} not enrolled"
        )));
    }
    Ok(tx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use desim::Time;
    use fabric_types::rwset::{Key, Value, Version, WriteItem};
    use fabric_types::transaction::EndorsementPolicy;

    fn invocation(kind: ChaincodeKind, arg: &str) -> ScheduledInvocation {
        ScheduledInvocation {
            at: Time::ZERO,
            channel: fabric_types::ids::ChannelId::DEFAULT,
            chaincode: kind,
            args: vec![arg.to_owned()],
            padding: 100,
        }
    }

    #[test]
    fn endorse_increment_reads_endorser_state() {
        let msp = Msp::single_org(3);
        let mut state = StateDb::new();
        state.apply(
            Version::new(5, 2),
            &[WriteItem {
                key: Key::from("counter3"),
                value: Value::from_u64(9),
            }],
        );
        let tx = endorse_invocation(
            &invocation(ChaincodeKind::Increment, "counter3"),
            TxId(1),
            ClientId(0),
            PeerId(1),
            &state,
            &msp,
        )
        .unwrap();
        assert_eq!(tx.rwset.reads[0].version, Some(Version::new(5, 2)));
        assert_eq!(tx.rwset.writes[0].value.as_u64(), Some(10));
        assert_eq!(tx.payload_padding, 100);
        // The endorsement verifies under the policy.
        let policy = EndorsementPolicy::single(PeerId(1));
        assert!(policy.is_satisfied(&msp, &tx.digest(), &tx.endorsements));
    }

    #[test]
    fn endorse_payload_writes_delta_row() {
        let msp = Msp::single_org(2);
        let state = StateDb::new();
        let tx = endorse_invocation(
            &invocation(ChaincodeKind::Payload, "row42"),
            TxId(2),
            ClientId(0),
            PeerId(0),
            &state,
            &msp,
        )
        .unwrap();
        assert!(tx.rwset.reads.is_empty());
        assert_eq!(tx.rwset.writes[0].key, Key::from("delta:row42"));
    }

    #[test]
    fn unenrolled_endorser_is_an_error() {
        let msp = Msp::single_org(1);
        let state = StateDb::new();
        let err = endorse_invocation(
            &invocation(ChaincodeKind::Payload, "row1"),
            TxId(3),
            ClientId(0),
            PeerId(9),
            &state,
            &msp,
        );
        assert!(err.is_err());
    }
}
