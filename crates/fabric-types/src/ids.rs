//! Identifiers for the entities of a Fabric network.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Identity of a peer within the network.
///
/// Peers are numbered densely from zero so that per-peer state can live in
/// plain vectors. The simulation layer maps `PeerId(i)` to its own node ids.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PeerId(pub u32);

impl PeerId {
    /// The peer's index, for direct vector addressing.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for PeerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "peer{}", self.0)
    }
}

/// Identity of a Fabric *channel* — an independent ledger with its own
/// membership, leader election and gossip dissemination.
///
/// Channels are numbered densely from zero so per-channel state can live in
/// small vectors; [`ChannelId::DEFAULT`] is the single channel of the
/// paper's evaluation deployment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ChannelId(pub u16);

impl ChannelId {
    /// The implicit channel of single-channel deployments.
    pub const DEFAULT: ChannelId = ChannelId(0);

    /// The channel's index, for direct vector addressing.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ChannelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ch{}", self.0)
    }
}

/// Identity of an organization participating in the channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct OrgId(pub u16);

impl fmt::Display for OrgId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "org{}", self.0)
    }
}

/// Identity of a transaction, unique within an experiment.
///
/// Real Fabric derives transaction ids from a client nonce and certificate;
/// a counter preserves uniqueness, which is the only property the pipeline
/// relies on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TxId(pub u64);

impl fmt::Display for TxId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tx{:08x}", self.0)
    }
}

/// Identity of a client application submitting transactions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ClientId(pub u32);

impl fmt::Display for ClientId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "client{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        assert_eq!(PeerId(3).to_string(), "peer3");
        assert_eq!(OrgId(1).to_string(), "org1");
        assert_eq!(TxId(255).to_string(), "tx000000ff");
        assert_eq!(ClientId(0).to_string(), "client0");
    }

    #[test]
    fn peer_index_round_trips() {
        assert_eq!(PeerId(42).index(), 42);
    }

    #[test]
    fn ids_are_ordered() {
        assert!(PeerId(1) < PeerId(2));
        assert!(TxId(1) < TxId(2));
    }
}
