//! Cryptographic primitives: SHA-256 and simulated signatures.
//!
//! SHA-256 is implemented from scratch (FIPS 180-4) so the crate carries no
//! cryptography dependency; it is validated against the NIST test vectors in
//! this module's tests. Signatures are *simulated*: a signature is the
//! SHA-256 of the signer's secret key concatenated with the message, and the
//! membership service provider (which, in Fabric, certifies every identity
//! anyway) verifies by recomputation. This preserves message sizes and the
//! sign/verify control flow without claiming asymmetric security — adequate
//! for a performance study, as documented in `DESIGN.md`.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A 256-bit digest.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Hash256(pub [u8; 32]);

impl Hash256 {
    /// The all-zero digest, used for the genesis block's previous hash.
    pub const ZERO: Hash256 = Hash256([0; 32]);

    /// Hex rendering of the full digest.
    pub fn to_hex(self) -> String {
        self.0.iter().map(|b| format!("{b:02x}")).collect()
    }
}

impl fmt::Debug for Hash256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Eight hex chars identify a hash in logs without flooding them.
        write!(
            f,
            "Hash256({:02x}{:02x}{:02x}{:02x}…)",
            self.0[0], self.0[1], self.0[2], self.0[3]
        )
    }
}

impl fmt::Display for Hash256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

/// Incremental SHA-256 hasher (FIPS 180-4).
///
/// ```
/// use fabric_types::crypto::Sha256;
/// let mut h = Sha256::new();
/// h.update(b"ab");
/// h.update(b"c");
/// assert_eq!(
///     h.finalize().to_hex(),
///     "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad",
/// );
/// ```
#[derive(Debug, Clone)]
pub struct Sha256 {
    state: [u32; 8],
    buffer: [u8; 64],
    buffered: usize,
    length_bits: u64,
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256 {
    /// Creates a fresh hasher.
    pub fn new() -> Self {
        Sha256 {
            state: H0,
            buffer: [0; 64],
            buffered: 0,
            length_bits: 0,
        }
    }

    /// Absorbs `data` into the hash state.
    pub fn update(&mut self, data: &[u8]) {
        self.length_bits = self.length_bits.wrapping_add(data.len() as u64 * 8);
        let mut rest = data;
        if self.buffered > 0 {
            let take = rest.len().min(64 - self.buffered);
            self.buffer[self.buffered..self.buffered + take].copy_from_slice(&rest[..take]);
            self.buffered += take;
            rest = &rest[take..];
            if self.buffered == 64 {
                let block = self.buffer;
                self.compress(&block);
                self.buffered = 0;
            }
        }
        while rest.len() >= 64 {
            let (block, tail) = rest.split_at(64);
            let mut b = [0u8; 64];
            b.copy_from_slice(block);
            self.compress(&b);
            rest = tail;
        }
        if !rest.is_empty() {
            self.buffer[..rest.len()].copy_from_slice(rest);
            self.buffered = rest.len();
        }
    }

    /// Convenience: absorbs a `u64` in big-endian byte order.
    pub fn update_u64(&mut self, v: u64) {
        self.update(&v.to_be_bytes());
    }

    /// Convenience: absorbs a `u32` in big-endian byte order.
    pub fn update_u32(&mut self, v: u32) {
        self.update(&v.to_be_bytes());
    }

    /// Finishes the computation and returns the digest.
    pub fn finalize(mut self) -> Hash256 {
        let total_bits = self.length_bits;
        self.update(&[0x80]);
        while self.buffered != 56 {
            self.update(&[0]);
        }
        // Manual length append: bypass update() so length_bits stays fixed.
        self.buffer[56..64].copy_from_slice(&total_bits.to_be_bytes());
        let block = self.buffer;
        self.compress(&block);
        let mut out = [0u8; 32];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        Hash256(out)
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 64];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let t1 = h
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(K[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }
        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
        self.state[5] = self.state[5].wrapping_add(f);
        self.state[6] = self.state[6].wrapping_add(g);
        self.state[7] = self.state[7].wrapping_add(h);
    }
}

/// One-shot SHA-256 of a byte slice.
pub fn sha256(data: &[u8]) -> Hash256 {
    let mut h = Sha256::new();
    h.update(data);
    h.finalize()
}

/// A simulated signing key (see module docs for the security caveat).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SecretKey(pub [u8; 32]);

impl SecretKey {
    /// Derives a key deterministically from a label; used by the simulated
    /// MSP so identical configurations produce identical credentials.
    pub fn derive(label: &str, index: u64) -> Self {
        let mut h = Sha256::new();
        h.update(b"fair-gossip-key/");
        h.update(label.as_bytes());
        h.update_u64(index);
        SecretKey(h.finalize().0)
    }
}

/// A simulated signature over a message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Signature(pub Hash256);

impl Signature {
    /// Size of a signature on the wire. Matches the ballpark of an ECDSA
    /// signature plus encoding overhead, so message-size accounting stays
    /// realistic.
    pub const WIRE_SIZE: usize = 72;
}

/// Signs `message` with `key`.
pub fn sign(key: &SecretKey, message: &[u8]) -> Signature {
    let mut h = Sha256::new();
    h.update(&key.0);
    h.update(message);
    Signature(h.finalize())
}

/// Verifies that `sig` is `message` signed by `key`.
pub fn verify(key: &SecretKey, message: &[u8], sig: &Signature) -> bool {
    sign(key, message) == *sig
}

#[cfg(test)]
mod tests {
    use super::*;

    // NIST FIPS 180-4 test vectors.
    #[test]
    fn sha256_empty() {
        assert_eq!(
            sha256(b"").to_hex(),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
    }

    #[test]
    fn sha256_abc() {
        assert_eq!(
            sha256(b"abc").to_hex(),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
    }

    #[test]
    fn sha256_448_bits() {
        assert_eq!(
            sha256(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq").to_hex(),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn sha256_896_bits() {
        let msg = b"abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmnhijklmno\
ijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu";
        assert_eq!(
            sha256(msg).to_hex(),
            "cf5b16a778af8380036ce59e7b0492370b249b11e8f07a51afac45037afee9d1"
        );
    }

    #[test]
    fn sha256_million_a() {
        let msg = vec![b'a'; 1_000_000];
        assert_eq!(
            sha256(&msg).to_hex(),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn incremental_matches_oneshot_for_awkward_chunkings() {
        let data: Vec<u8> = (0..1000u32).map(|i| (i % 251) as u8).collect();
        let oneshot = sha256(&data);
        for chunk in [1usize, 3, 63, 64, 65, 127, 500] {
            let mut h = Sha256::new();
            for part in data.chunks(chunk) {
                h.update(part);
            }
            assert_eq!(h.finalize(), oneshot, "chunk size {chunk}");
        }
    }

    #[test]
    fn update_u64_is_big_endian() {
        let mut a = Sha256::new();
        a.update_u64(0x0102030405060708);
        let mut b = Sha256::new();
        b.update(&[1, 2, 3, 4, 5, 6, 7, 8]);
        assert_eq!(a.finalize(), b.finalize());
    }

    #[test]
    fn sign_verify_round_trip() {
        let key = SecretKey::derive("peer", 3);
        let sig = sign(&key, b"endorse me");
        assert!(verify(&key, b"endorse me", &sig));
        assert!(!verify(&key, b"endorse me!", &sig));
        let other = SecretKey::derive("peer", 4);
        assert!(!verify(&other, b"endorse me", &sig));
    }

    #[test]
    fn derived_keys_are_stable_and_distinct() {
        assert_eq!(SecretKey::derive("a", 1), SecretKey::derive("a", 1));
        assert_ne!(SecretKey::derive("a", 1), SecretKey::derive("a", 2));
        assert_ne!(SecretKey::derive("a", 1), SecretKey::derive("b", 1));
    }

    #[test]
    fn hash_debug_is_short_display_is_full() {
        let h = sha256(b"abc");
        assert!(format!("{h:?}").starts_with("Hash256(ba7816bf"));
        assert_eq!(h.to_string().len(), 64);
    }
}
