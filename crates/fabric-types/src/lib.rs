//! # fabric-types — Hyperledger Fabric data model
//!
//! The pure data layer of the reproduction: identifiers, cryptographic
//! digests and simulated signatures, the membership service provider,
//! versioned read/write sets, transactions with endorsements, and
//! hash-chained blocks. No I/O, no simulation — everything here is
//! deterministic value manipulation, shared by the ledger, orderer, gossip
//! and workload crates.
//!
//! ```
//! use fabric_types::block::Block;
//! use fabric_types::ids::{ClientId, PeerId, TxId};
//! use fabric_types::msp::Msp;
//! use fabric_types::rwset::RwSet;
//! use fabric_types::transaction::{EndorsementPolicy, Transaction};
//!
//! let msp = Msp::single_org(4);
//! let mut tx = Transaction::new(
//!     TxId(1),
//!     "increment",
//!     ClientId(0),
//!     RwSet::builder().read("counter1", None).write_u64("counter1", 1).build(),
//! );
//! tx.endorse(&msp, PeerId(2));
//! assert!(EndorsementPolicy::AnyMember.is_satisfied(&msp, &tx.digest(), &tx.endorsements));
//!
//! let genesis = Block::genesis();
//! let block = Block::new(1, genesis.hash(), vec![tx]);
//! assert!(block.follows(&genesis));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod block;
pub mod crypto;
pub mod ids;
pub mod msp;
pub mod rwset;
pub mod snapshot;
pub mod transaction;

pub use block::{Block, BlockHeader, BlockRef};
pub use crypto::{sha256, Hash256, Signature};
pub use ids::{ClientId, OrgId, PeerId, TxId};
pub use msp::{Identity, Msp};
pub use rwset::{Key, RwSet, Value, Version};
pub use snapshot::{Checkpoint, Snapshot, SnapshotRef};
pub use transaction::{Endorsement, EndorsementPolicy, Transaction};
