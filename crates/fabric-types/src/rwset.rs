//! State keys, values, versions and transaction read/write sets.
//!
//! Fabric's execute-order-validate model hinges on versioned reads: a
//! simulated chaincode records, for every key it reads, the version of the
//! value it observed (the `(block, tx)` coordinate of the write that
//! produced it). At validation time the read versions must still match the
//! committed state, otherwise the transaction is invalidated.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A state key. Fabric keys are strings; experiments use short synthetic
/// names such as `"asset17"`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Key(pub String);

impl Key {
    /// Builds a key from anything string-like.
    pub fn new(s: impl Into<String>) -> Self {
        Key(s.into())
    }

    /// Byte length of the key on the wire.
    pub fn wire_size(&self) -> usize {
        self.0.len()
    }
}

impl fmt::Display for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for Key {
    fn from(s: &str) -> Self {
        Key(s.to_owned())
    }
}

/// A state value: opaque bytes, with helpers for the integer counters used
/// by the paper's conflict workload.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct Value(pub Vec<u8>);

impl Value {
    /// Encodes a `u64` counter value.
    pub fn from_u64(v: u64) -> Self {
        Value(v.to_be_bytes().to_vec())
    }

    /// Decodes a counter value written by [`Value::from_u64`].
    pub fn as_u64(&self) -> Option<u64> {
        let bytes: [u8; 8] = self.0.as_slice().try_into().ok()?;
        Some(u64::from_be_bytes(bytes))
    }

    /// Byte length of the value on the wire.
    pub fn wire_size(&self) -> usize {
        self.0.len()
    }
}

/// The commit coordinate of a write: which transaction of which block
/// produced the current value of a key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Version {
    /// Block number of the committing block.
    pub block_num: u64,
    /// Index of the transaction within that block.
    pub tx_num: u32,
}

impl Version {
    /// Builds a version from its coordinates.
    pub fn new(block_num: u64, tx_num: u32) -> Self {
        Version { block_num, tx_num }
    }
}

impl fmt::Display for Version {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}.{}", self.block_num, self.tx_num)
    }
}

/// One read recorded during simulation: the key and the version observed
/// (`None` when the key did not exist yet).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReadItem {
    /// The key that was read.
    pub key: Key,
    /// The version observed, or `None` for an absent key.
    pub version: Option<Version>,
}

/// One write recorded during simulation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WriteItem {
    /// The key being written.
    pub key: Key,
    /// The new value.
    pub value: Value,
}

/// The read/write set produced by simulating a chaincode.
///
/// ```
/// use fabric_types::rwset::{RwSet, Version};
/// let rwset = RwSet::builder()
///     .read("counter7", Some(Version::new(3, 1)))
///     .write_u64("counter7", 42)
///     .build();
/// assert_eq!(rwset.reads.len(), 1);
/// assert_eq!(rwset.writes.len(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct RwSet {
    /// Keys read, with the versions observed.
    pub reads: Vec<ReadItem>,
    /// Keys written, with the new values.
    pub writes: Vec<WriteItem>,
}

impl RwSet {
    /// Starts building a read/write set.
    pub fn builder() -> RwSetBuilder {
        RwSetBuilder::default()
    }

    /// Whether the sets touch `key` at all.
    pub fn touches(&self, key: &Key) -> bool {
        self.reads.iter().any(|r| &r.key == key) || self.writes.iter().any(|w| &w.key == key)
    }

    /// Approximate wire size: keys, values, and a per-item version/length
    /// overhead comparable to Fabric's protobuf encoding.
    pub fn wire_size(&self) -> usize {
        const PER_ITEM: usize = 16;
        let reads: usize = self
            .reads
            .iter()
            .map(|r| r.key.wire_size() + PER_ITEM)
            .sum();
        let writes: usize = self
            .writes
            .iter()
            .map(|w| w.key.wire_size() + w.value.wire_size() + PER_ITEM)
            .sum();
        reads + writes
    }
}

/// Incremental builder for [`RwSet`].
#[derive(Debug, Default)]
pub struct RwSetBuilder {
    rwset: RwSet,
}

impl RwSetBuilder {
    /// Records a read of `key` at `version`.
    pub fn read(mut self, key: impl Into<String>, version: Option<Version>) -> Self {
        self.rwset.reads.push(ReadItem {
            key: Key::new(key),
            version,
        });
        self
    }

    /// Records a write of `value` to `key`.
    pub fn write(mut self, key: impl Into<String>, value: Value) -> Self {
        self.rwset.writes.push(WriteItem {
            key: Key::new(key),
            value,
        });
        self
    }

    /// Records a write of a counter value to `key`.
    pub fn write_u64(self, key: impl Into<String>, value: u64) -> Self {
        self.write(key, Value::from_u64(value))
    }

    /// Finishes the build.
    pub fn build(self) -> RwSet {
        self.rwset
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn version_ordering_is_block_then_tx() {
        assert!(Version::new(1, 5) < Version::new(2, 0));
        assert!(Version::new(2, 0) < Version::new(2, 1));
        assert_eq!(Version::new(3, 3), Version::new(3, 3));
    }

    #[test]
    fn value_u64_round_trip() {
        assert_eq!(Value::from_u64(12345).as_u64(), Some(12345));
        assert_eq!(Value(vec![1, 2, 3]).as_u64(), None);
        assert_eq!(Value::default().as_u64(), None);
    }

    #[test]
    fn builder_collects_items_in_order() {
        let s = RwSet::builder()
            .read("a", None)
            .read("b", Some(Version::new(1, 0)))
            .write_u64("b", 9)
            .build();
        assert_eq!(s.reads[0].key, Key::from("a"));
        assert_eq!(s.reads[0].version, None);
        assert_eq!(s.reads[1].version, Some(Version::new(1, 0)));
        assert_eq!(s.writes[0].value.as_u64(), Some(9));
    }

    #[test]
    fn touches_checks_both_sets() {
        let s = RwSet::builder().read("r", None).write_u64("w", 1).build();
        assert!(s.touches(&Key::from("r")));
        assert!(s.touches(&Key::from("w")));
        assert!(!s.touches(&Key::from("x")));
    }

    #[test]
    fn wire_size_grows_with_content() {
        let small = RwSet::builder().write_u64("k", 1).build();
        let big = RwSet::builder()
            .write_u64("k", 1)
            .write_u64("another-key", 2)
            .build();
        assert!(big.wire_size() > small.wire_size());
        assert_eq!(RwSet::default().wire_size(), 0);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Version::new(4, 2).to_string(), "v4.2");
        assert_eq!(Key::from("asset1").to_string(), "asset1");
    }
}
