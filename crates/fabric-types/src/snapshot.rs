//! Ledger checkpoints and state snapshots.
//!
//! A **checkpoint** is the deterministic fingerprint of a ledger prefix:
//! the height of its last block plus a hash over the entire materialized
//! state at that height. A **snapshot** is the transferable artifact behind
//! a checkpoint — the full key/value/version state plus the chain-tip hash,
//! enough for a joiner to reconstruct a ledger at `height` and replay only
//! the tail above it instead of the whole chain.
//!
//! The determinism contract: two ledgers that committed the same blocks in
//! the same order hold byte-identical state, so [`hash_state_entries`] over
//! their key-ordered entries yields the same [`Hash256`]. A
//! snapshot-bootstrapped ledger that replays the tail therefore ends at the
//! exact state hash of a genesis-replay ledger — this is proptested in
//! `fabric-ledger`.

use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crate::crypto::{Hash256, Sha256};
use crate::rwset::{Key, Value, Version};

/// One key of the snapshotted state: the key, its latest value, and the
/// `(block, tx)` coordinate of the write that produced it.
pub type StateEntry = (Key, Value, Version);

/// The fingerprint of a ledger prefix: its height and the hash of the
/// materialized state after committing block `height`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Checkpoint {
    /// Number of the last block covered by this checkpoint.
    pub height: u64,
    /// [`hash_state_entries`] over the state at `height`.
    pub state_hash: Hash256,
}

impl Checkpoint {
    /// Wire bytes of one checkpoint (height + state hash).
    pub const WIRE: usize = 8 + 32;
}

/// The transferable state behind a [`Checkpoint`]: everything a joiner
/// needs to stand up a ledger at `checkpoint.height` and resume committing
/// at `checkpoint.height + 1`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Snapshot {
    /// The checkpoint this snapshot materializes.
    pub checkpoint: Checkpoint,
    /// Header hash of block `checkpoint.height` — the link the first tail
    /// block must match.
    pub last_block_hash: Hash256,
    /// The complete state in key order.
    pub entries: Vec<StateEntry>,
}

impl Snapshot {
    /// Whether the entries hash to the advertised checkpoint — a receiver
    /// must reject a snapshot that fails this before seeding a ledger.
    pub fn verify(&self) -> bool {
        hash_state_entries(self.entries.iter().map(|(k, v, ver)| (k, v, *ver)))
            == self.checkpoint.state_hash
    }

    /// Size of the snapshot on the wire: checkpoint, tip hash, framing,
    /// and a length-prefixed key/value/version triple per entry.
    pub fn wire_size(&self) -> usize {
        const FRAMING: usize = 16;
        const PER_ENTRY: usize = 8 + 8 + 12; // two length prefixes + version
        Checkpoint::WIRE
            + 32
            + FRAMING
            + self
                .entries
                .iter()
                .map(|(k, v, _)| k.wire_size() + v.wire_size() + PER_ENTRY)
                .sum::<usize>()
    }
}

/// Shared, zero-copy handle to an immutable snapshot — the same idiom as
/// [`crate::block::BlockRef`]: serving a snapshot to N joiners clones a
/// reference count, never the state, and the wire size is cached at
/// construction.
#[derive(Debug, Clone)]
pub struct SnapshotRef {
    inner: Arc<Snapshot>,
    wire_size: usize,
}

impl SnapshotRef {
    /// Wraps `snapshot` in a shared handle, precomputing its wire size.
    pub fn new(snapshot: Snapshot) -> Self {
        let wire_size = snapshot.wire_size();
        SnapshotRef {
            inner: Arc::new(snapshot),
            wire_size,
        }
    }

    /// Cached size of the snapshot on the wire, in bytes.
    pub fn wire_size(&self) -> usize {
        self.wire_size
    }

    /// Whether two handles share the same allocation.
    pub fn ptr_eq(a: &SnapshotRef, b: &SnapshotRef) -> bool {
        Arc::ptr_eq(&a.inner, &b.inner)
    }
}

impl std::ops::Deref for SnapshotRef {
    type Target = Snapshot;
    fn deref(&self) -> &Snapshot {
        &self.inner
    }
}

impl From<Snapshot> for SnapshotRef {
    fn from(snapshot: Snapshot) -> Self {
        SnapshotRef::new(snapshot)
    }
}

impl PartialEq for SnapshotRef {
    fn eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner) || *self.inner == *other.inner
    }
}

/// The canonical state digest: a [`Sha256`] over the count and the
/// length-prefixed `(key, value, version)` triples **in key order**. Both
/// the ledger (computing a checkpoint) and a snapshot receiver (verifying
/// one) use this exact function; any divergence in iteration order or
/// framing would break the snapshot-equivalence contract.
pub fn hash_state_entries<'a, I>(entries: I) -> Hash256
where
    I: Iterator<Item = (&'a Key, &'a Value, Version)>,
{
    let mut h = Sha256::new();
    let mut count: u64 = 0;
    for (key, value, version) in entries {
        h.update_u64(key.0.len() as u64);
        h.update(key.0.as_bytes());
        h.update_u64(value.0.len() as u64);
        h.update(&value.0);
        h.update_u64(version.block_num);
        h.update_u32(version.tx_num);
        count += 1;
    }
    h.update_u64(count);
    h.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(key: &str, val: u64, block: u64) -> StateEntry {
        (Key::from(key), Value::from_u64(val), Version::new(block, 0))
    }

    fn snapshot(entries: Vec<StateEntry>, height: u64) -> Snapshot {
        let state_hash = hash_state_entries(entries.iter().map(|(k, v, ver)| (k, v, *ver)));
        Snapshot {
            checkpoint: Checkpoint { height, state_hash },
            last_block_hash: Hash256([7; 32]),
            entries,
        }
    }

    #[test]
    fn state_hash_is_order_and_content_sensitive() {
        let a = hash_state_entries(
            [entry("a", 1, 1), entry("b", 2, 2)]
                .iter()
                .map(|(k, v, ver)| (k, v, *ver)),
        );
        let same = hash_state_entries(
            [entry("a", 1, 1), entry("b", 2, 2)]
                .iter()
                .map(|(k, v, ver)| (k, v, *ver)),
        );
        assert_eq!(a, same);
        let reordered = hash_state_entries(
            [entry("b", 2, 2), entry("a", 1, 1)]
                .iter()
                .map(|(k, v, ver)| (k, v, *ver)),
        );
        assert_ne!(a, reordered);
        let other_value = hash_state_entries(
            [entry("a", 9, 1), entry("b", 2, 2)]
                .iter()
                .map(|(k, v, ver)| (k, v, *ver)),
        );
        assert_ne!(a, other_value);
        let other_version = hash_state_entries(
            [entry("a", 1, 3), entry("b", 2, 2)]
                .iter()
                .map(|(k, v, ver)| (k, v, *ver)),
        );
        assert_ne!(a, other_version);
        let empty = hash_state_entries(std::iter::empty());
        assert_ne!(a, empty);
    }

    #[test]
    fn length_prefixing_prevents_boundary_ambiguity() {
        // ("ab", "c") and ("a", "bc") concatenate identically; the length
        // prefixes must keep their digests apart.
        let one = hash_state_entries(
            [(Key::from("ab"), Value(b"c".to_vec()), Version::new(1, 0))]
                .iter()
                .map(|(k, v, ver)| (k, v, *ver)),
        );
        let two = hash_state_entries(
            [(Key::from("a"), Value(b"bc".to_vec()), Version::new(1, 0))]
                .iter()
                .map(|(k, v, ver)| (k, v, *ver)),
        );
        assert_ne!(one, two);
    }

    #[test]
    fn snapshot_verify_detects_tampering() {
        let snap = snapshot(vec![entry("a", 1, 1), entry("b", 2, 1)], 8);
        assert!(snap.verify());
        let mut bad = snap.clone();
        bad.entries[0].1 = Value::from_u64(99);
        assert!(!bad.verify());
        let mut wrong_claim = snap;
        wrong_claim.checkpoint.state_hash = Hash256([1; 32]);
        assert!(!wrong_claim.verify());
    }

    #[test]
    fn wire_size_grows_with_state_and_is_cached_by_ref() {
        let small = snapshot(vec![entry("a", 1, 1)], 4);
        let large = snapshot((0..50).map(|i| entry(&format!("k{i}"), i, 1)).collect(), 4);
        assert!(large.wire_size() > small.wire_size());
        let computed = large.wire_size();
        let shared = SnapshotRef::new(large);
        assert_eq!(shared.wire_size(), computed);
        let served = shared.clone();
        assert!(
            SnapshotRef::ptr_eq(&shared, &served),
            "serving a snapshot must be a pointer bump"
        );
        assert_eq!(shared, served);
    }
}
