//! Ledger checkpoints and state snapshots.
//!
//! A **checkpoint** is the deterministic fingerprint of a ledger prefix:
//! the height of its last block plus a hash over the entire materialized
//! state at that height. A **snapshot** is the transferable artifact behind
//! a checkpoint — the full key/value/version state plus the chain-tip hash,
//! enough for a joiner to reconstruct a ledger at `height` and replay only
//! the tail above it instead of the whole chain.
//!
//! The determinism contract: two ledgers that committed the same blocks in
//! the same order hold byte-identical state, so [`hash_state_entries`] over
//! their key-ordered entries yields the same [`Hash256`]. A
//! snapshot-bootstrapped ledger that replays the tail therefore ends at the
//! exact state hash of a genesis-replay ledger — this is proptested in
//! `fabric-ledger`.

use std::collections::BTreeMap;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crate::crypto::{Hash256, Sha256};
use crate::rwset::{Key, Value, Version};

/// One key of the snapshotted state: the key, its latest value, and the
/// `(block, tx)` coordinate of the write that produced it.
pub type StateEntry = (Key, Value, Version);

/// The fingerprint of a ledger prefix: its height and the hash of the
/// materialized state after committing block `height`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Checkpoint {
    /// Number of the last block covered by this checkpoint.
    pub height: u64,
    /// [`hash_state_entries`] over the state at `height`.
    pub state_hash: Hash256,
}

impl Checkpoint {
    /// Wire bytes of one checkpoint (height + state hash).
    pub const WIRE: usize = 8 + 32;
}

/// The transferable state behind a [`Checkpoint`]: everything a joiner
/// needs to stand up a ledger at `checkpoint.height` and resume committing
/// at `checkpoint.height + 1`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Snapshot {
    /// The checkpoint this snapshot materializes.
    pub checkpoint: Checkpoint,
    /// Header hash of block `checkpoint.height` — the link the first tail
    /// block must match.
    pub last_block_hash: Hash256,
    /// The complete state in key order.
    pub entries: Vec<StateEntry>,
}

impl Snapshot {
    /// Whether the entries hash to the advertised checkpoint — a receiver
    /// must reject a snapshot that fails this before seeding a ledger.
    pub fn verify(&self) -> bool {
        hash_state_entries(self.entries.iter().map(|(k, v, ver)| (k, v, *ver)))
            == self.checkpoint.state_hash
    }

    /// Size of the snapshot on the wire: checkpoint, tip hash, framing,
    /// and a length-prefixed key/value/version triple per entry.
    pub fn wire_size(&self) -> usize {
        const FRAMING: usize = 16;
        const PER_ENTRY: usize = 8 + 8 + 12; // two length prefixes + version
        Checkpoint::WIRE
            + 32
            + FRAMING
            + self
                .entries
                .iter()
                .map(|(k, v, _)| k.wire_size() + v.wire_size() + PER_ENTRY)
                .sum::<usize>()
    }
}

/// Shared, zero-copy handle to an immutable snapshot — the same idiom as
/// [`crate::block::BlockRef`]: serving a snapshot to N joiners clones a
/// reference count, never the state, and the wire size is cached at
/// construction.
#[derive(Debug, Clone)]
pub struct SnapshotRef {
    inner: Arc<Snapshot>,
    wire_size: usize,
}

impl SnapshotRef {
    /// Wraps `snapshot` in a shared handle, precomputing its wire size.
    pub fn new(snapshot: Snapshot) -> Self {
        let wire_size = snapshot.wire_size();
        SnapshotRef {
            inner: Arc::new(snapshot),
            wire_size,
        }
    }

    /// Cached size of the snapshot on the wire, in bytes.
    pub fn wire_size(&self) -> usize {
        self.wire_size
    }

    /// Whether two handles share the same allocation.
    pub fn ptr_eq(a: &SnapshotRef, b: &SnapshotRef) -> bool {
        Arc::ptr_eq(&a.inner, &b.inner)
    }
}

impl std::ops::Deref for SnapshotRef {
    type Target = Snapshot;
    fn deref(&self) -> &Snapshot {
        &self.inner
    }
}

impl From<Snapshot> for SnapshotRef {
    fn from(snapshot: Snapshot) -> Self {
        SnapshotRef::new(snapshot)
    }
}

impl PartialEq for SnapshotRef {
    fn eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner) || *self.inner == *other.inner
    }
}

/// One slice of a chunked snapshot transfer: a contiguous entry range of a
/// shared [`SnapshotRef`], carrying the checkpoint it belongs to plus its
/// `{chunk_index, total_chunks}` position. Serving N chunks clones the Arc
/// N times, never the entries — the zero-copy idiom of [`SnapshotRef`]
/// extended to partial views.
///
/// Chunk plans are deterministic in `(snapshot, budget)`: two servers
/// holding the same snapshot produce identical plans, so a receiver can
/// resume an interrupted transfer from a *different* server by asking for
/// the missing index suffix.
#[derive(Debug, Clone)]
pub struct SnapshotChunk {
    snapshot: SnapshotRef,
    chunk_index: u32,
    total_chunks: u32,
    start: usize,
    end: usize,
    wire_size: usize,
}

impl SnapshotChunk {
    /// Wire bytes of one chunk header: checkpoint, tip hash, and the
    /// index/total/entry-count framing.
    pub const HEADER: usize = Checkpoint::WIRE + 32 + 16;
    const PER_ENTRY: usize = 8 + 8 + 12;

    /// Greedily packs the snapshot's entries into chunks of at most
    /// `budget` wire bytes each. Every chunk carries at least one entry, so
    /// a single entry larger than the budget still ships (as an oversized
    /// chunk of its own); an empty snapshot yields one header-only chunk.
    pub fn plan(snapshot: &SnapshotRef, budget: usize) -> Vec<SnapshotChunk> {
        let entry_wire = |(k, v, _): &StateEntry| k.wire_size() + v.wire_size() + Self::PER_ENTRY;
        let entries = &snapshot.entries;
        let mut ranges: Vec<(usize, usize, usize)> = Vec::new();
        let mut start = 0;
        while start < entries.len() {
            let mut end = start + 1;
            let mut wire = Self::HEADER + entry_wire(&entries[start]);
            while end < entries.len() && wire + entry_wire(&entries[end]) <= budget {
                wire += entry_wire(&entries[end]);
                end += 1;
            }
            ranges.push((start, end, wire));
            start = end;
        }
        if ranges.is_empty() {
            ranges.push((0, 0, Self::HEADER));
        }
        let total_chunks = ranges.len() as u32;
        ranges
            .into_iter()
            .enumerate()
            .map(|(i, (start, end, wire_size))| SnapshotChunk {
                snapshot: snapshot.clone(),
                chunk_index: i as u32,
                total_chunks,
                start,
                end,
                wire_size,
            })
            .collect()
    }

    /// The checkpoint this chunk is a slice of.
    pub fn checkpoint(&self) -> Checkpoint {
        self.snapshot.checkpoint
    }

    /// Header hash of the block at the checkpoint height.
    pub fn last_block_hash(&self) -> Hash256 {
        self.snapshot.last_block_hash
    }

    /// Position of this chunk in the plan (0-based).
    pub fn chunk_index(&self) -> u32 {
        self.chunk_index
    }

    /// Number of chunks in the whole plan.
    pub fn total_chunks(&self) -> u32 {
        self.total_chunks
    }

    /// The entry slice this chunk carries.
    pub fn entries(&self) -> &[StateEntry] {
        &self.snapshot.entries[self.start..self.end]
    }

    /// Size of this chunk on the wire (header plus its entries), cached at
    /// plan time.
    pub fn wire_size(&self) -> usize {
        self.wire_size
    }
}

/// Reassembles a chunked snapshot on the receiving side. The first chunk
/// pins the checkpoint, tip hash and chunk count; later chunks must match
/// them exactly (chunks of a different checkpoint are rejected, duplicates
/// are dropped). [`Self::first_missing`] is the resume offset to put in a
/// follow-up request after a partial transfer.
#[derive(Debug, Clone)]
pub struct SnapshotAssembler {
    checkpoint: Checkpoint,
    last_block_hash: Hash256,
    total_chunks: u32,
    chunks: BTreeMap<u32, Vec<StateEntry>>,
}

impl SnapshotAssembler {
    /// Starts assembly from the first chunk received (any index).
    pub fn new(first: &SnapshotChunk) -> Self {
        let mut a = SnapshotAssembler {
            checkpoint: first.checkpoint(),
            last_block_hash: first.last_block_hash(),
            total_chunks: first.total_chunks(),
            chunks: BTreeMap::new(),
        };
        a.accept(first);
        a
    }

    /// Absorbs one chunk. Returns `false` (without mutating) for a chunk of
    /// a different checkpoint/plan, an out-of-range index, or a duplicate.
    pub fn accept(&mut self, chunk: &SnapshotChunk) -> bool {
        if chunk.checkpoint() != self.checkpoint
            || chunk.last_block_hash() != self.last_block_hash
            || chunk.total_chunks() != self.total_chunks
            || chunk.chunk_index() >= self.total_chunks
            || self.chunks.contains_key(&chunk.chunk_index())
        {
            return false;
        }
        self.chunks
            .insert(chunk.chunk_index(), chunk.entries().to_vec());
        true
    }

    /// The checkpoint this assembly is pinned to.
    pub fn checkpoint(&self) -> Checkpoint {
        self.checkpoint
    }

    /// Chunks expected in total.
    pub fn total_chunks(&self) -> u32 {
        self.total_chunks
    }

    /// Distinct chunks absorbed so far.
    pub fn received_chunks(&self) -> u32 {
        self.chunks.len() as u32
    }

    /// Lowest chunk index not yet received — the resume offset for a
    /// follow-up request. Equals [`Self::total_chunks`] when complete.
    pub fn first_missing(&self) -> u32 {
        (0..self.total_chunks)
            .find(|i| !self.chunks.contains_key(i))
            .unwrap_or(self.total_chunks)
    }

    /// Whether every chunk has arrived.
    pub fn is_complete(&self) -> bool {
        self.chunks.len() as u32 == self.total_chunks
    }

    /// The reassembled snapshot once complete (`None` before). The caller
    /// must still [`Snapshot::verify`] it before installing — assembly
    /// checks framing, not the state hash.
    pub fn assemble(&self) -> Option<Snapshot> {
        if !self.is_complete() {
            return None;
        }
        Some(Snapshot {
            checkpoint: self.checkpoint,
            last_block_hash: self.last_block_hash,
            entries: self.chunks.values().flatten().cloned().collect(),
        })
    }
}

/// The state entries written between two consecutive checkpoints: applying
/// the delta over the full state at `base` yields the full state at
/// `checkpoint`. Retaining one delta per checkpoint costs O(writes in the
/// interval) instead of O(total state), which is what keeps per-checkpoint
/// retained bytes flat as the chain grows (the incremental-snapshot layout
/// of Solana's `snapshot_utils`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeltaSnapshot {
    /// The checkpoint this delta applies on top of.
    pub base: Checkpoint,
    /// The checkpoint the application produces.
    pub checkpoint: Checkpoint,
    /// Header hash of block `checkpoint.height`.
    pub last_block_hash: Hash256,
    /// Entries written in `(base.height, checkpoint.height]`, key order.
    pub entries: Vec<StateEntry>,
}

impl DeltaSnapshot {
    /// Size of the delta on the wire: two checkpoints, tip hash, framing,
    /// and the per-entry cost of [`Snapshot::wire_size`].
    pub fn wire_size(&self) -> usize {
        const FRAMING: usize = 16;
        const PER_ENTRY: usize = 8 + 8 + 12;
        2 * Checkpoint::WIRE
            + 32
            + FRAMING
            + self
                .entries
                .iter()
                .map(|(k, v, _)| k.wire_size() + v.wire_size() + PER_ENTRY)
                .sum::<usize>()
    }

    /// Applies the delta over its base snapshot, producing the next full
    /// snapshot. `None` when the base checkpoint doesn't match or when the
    /// merged entries fail to hash to the claimed checkpoint — the chain
    /// link a receiver must verify before trusting a delta.
    pub fn apply_to(&self, base: &Snapshot) -> Option<Snapshot> {
        if base.checkpoint != self.base {
            return None;
        }
        let mut merged: BTreeMap<Key, (Value, Version)> = base
            .entries
            .iter()
            .map(|(k, v, ver)| (k.clone(), (v.clone(), *ver)))
            .collect();
        for (k, v, ver) in &self.entries {
            merged.insert(k.clone(), (v.clone(), *ver));
        }
        let snapshot = Snapshot {
            checkpoint: self.checkpoint,
            last_block_hash: self.last_block_hash,
            entries: merged
                .into_iter()
                .map(|(k, (v, ver))| (k, v, ver))
                .collect(),
        };
        snapshot.verify().then_some(snapshot)
    }
}

/// The canonical state digest: a [`Sha256`] over the count and the
/// length-prefixed `(key, value, version)` triples **in key order**. Both
/// the ledger (computing a checkpoint) and a snapshot receiver (verifying
/// one) use this exact function; any divergence in iteration order or
/// framing would break the snapshot-equivalence contract.
pub fn hash_state_entries<'a, I>(entries: I) -> Hash256
where
    I: Iterator<Item = (&'a Key, &'a Value, Version)>,
{
    let mut h = Sha256::new();
    let mut count: u64 = 0;
    for (key, value, version) in entries {
        h.update_u64(key.0.len() as u64);
        h.update(key.0.as_bytes());
        h.update_u64(value.0.len() as u64);
        h.update(&value.0);
        h.update_u64(version.block_num);
        h.update_u32(version.tx_num);
        count += 1;
    }
    h.update_u64(count);
    h.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(key: &str, val: u64, block: u64) -> StateEntry {
        (Key::from(key), Value::from_u64(val), Version::new(block, 0))
    }

    fn snapshot(entries: Vec<StateEntry>, height: u64) -> Snapshot {
        let state_hash = hash_state_entries(entries.iter().map(|(k, v, ver)| (k, v, *ver)));
        Snapshot {
            checkpoint: Checkpoint { height, state_hash },
            last_block_hash: Hash256([7; 32]),
            entries,
        }
    }

    #[test]
    fn state_hash_is_order_and_content_sensitive() {
        let a = hash_state_entries(
            [entry("a", 1, 1), entry("b", 2, 2)]
                .iter()
                .map(|(k, v, ver)| (k, v, *ver)),
        );
        let same = hash_state_entries(
            [entry("a", 1, 1), entry("b", 2, 2)]
                .iter()
                .map(|(k, v, ver)| (k, v, *ver)),
        );
        assert_eq!(a, same);
        let reordered = hash_state_entries(
            [entry("b", 2, 2), entry("a", 1, 1)]
                .iter()
                .map(|(k, v, ver)| (k, v, *ver)),
        );
        assert_ne!(a, reordered);
        let other_value = hash_state_entries(
            [entry("a", 9, 1), entry("b", 2, 2)]
                .iter()
                .map(|(k, v, ver)| (k, v, *ver)),
        );
        assert_ne!(a, other_value);
        let other_version = hash_state_entries(
            [entry("a", 1, 3), entry("b", 2, 2)]
                .iter()
                .map(|(k, v, ver)| (k, v, *ver)),
        );
        assert_ne!(a, other_version);
        let empty = hash_state_entries(std::iter::empty());
        assert_ne!(a, empty);
    }

    #[test]
    fn length_prefixing_prevents_boundary_ambiguity() {
        // ("ab", "c") and ("a", "bc") concatenate identically; the length
        // prefixes must keep their digests apart.
        let one = hash_state_entries(
            [(Key::from("ab"), Value(b"c".to_vec()), Version::new(1, 0))]
                .iter()
                .map(|(k, v, ver)| (k, v, *ver)),
        );
        let two = hash_state_entries(
            [(Key::from("a"), Value(b"bc".to_vec()), Version::new(1, 0))]
                .iter()
                .map(|(k, v, ver)| (k, v, *ver)),
        );
        assert_ne!(one, two);
    }

    #[test]
    fn snapshot_verify_detects_tampering() {
        let snap = snapshot(vec![entry("a", 1, 1), entry("b", 2, 1)], 8);
        assert!(snap.verify());
        let mut bad = snap.clone();
        bad.entries[0].1 = Value::from_u64(99);
        assert!(!bad.verify());
        let mut wrong_claim = snap;
        wrong_claim.checkpoint.state_hash = Hash256([1; 32]);
        assert!(!wrong_claim.verify());
    }

    #[test]
    fn chunk_plan_respects_budget_and_reassembles_out_of_order() {
        let snap = SnapshotRef::new(snapshot(
            (0..40)
                .map(|i| entry(&format!("key{i:03}"), i, 1))
                .collect(),
            8,
        ));
        let budget = SnapshotChunk::HEADER + 120;
        let chunks = SnapshotChunk::plan(&snap, budget);
        assert!(chunks.len() > 1, "a small budget must split the snapshot");
        for c in &chunks {
            assert!(c.wire_size() <= budget, "chunk exceeds its budget");
            assert!(!c.entries().is_empty());
            assert_eq!(c.total_chunks() as usize, chunks.len());
            assert_eq!(c.checkpoint(), snap.checkpoint);
        }
        assert_eq!(
            chunks.iter().map(|c| c.entries().len()).sum::<usize>(),
            snap.entries.len(),
            "the plan covers every entry exactly once"
        );
        // Identical inputs yield an identical plan — the property that lets
        // a receiver resume a transfer from a different server.
        let replanned = SnapshotChunk::plan(&snap, budget);
        assert_eq!(replanned.len(), chunks.len());
        assert!(chunks
            .iter()
            .zip(&replanned)
            .all(|(a, b)| a.entries() == b.entries()));

        // Reassemble out of order, dropping duplicates along the way.
        let mut asm = SnapshotAssembler::new(chunks.last().unwrap());
        assert_eq!(asm.first_missing(), 0);
        assert!(!asm.accept(chunks.last().unwrap()), "duplicate rejected");
        for c in chunks.iter().rev().skip(1) {
            assert!(asm.accept(c));
        }
        assert!(asm.is_complete());
        assert_eq!(asm.first_missing(), asm.total_chunks());
        let rebuilt = asm.assemble().unwrap();
        assert!(rebuilt.verify());
        assert_eq!(rebuilt, *snap);
    }

    #[test]
    fn assembler_tracks_the_resume_offset_and_rejects_foreign_chunks() {
        let snap = SnapshotRef::new(snapshot(
            (0..12).map(|i| entry(&format!("k{i:02}"), i, 1)).collect(),
            8,
        ));
        let chunks = SnapshotChunk::plan(&snap, SnapshotChunk::HEADER + 60);
        assert!(chunks.len() >= 3);
        let mut asm = SnapshotAssembler::new(&chunks[0]);
        assert!(asm.accept(&chunks[1]));
        assert_eq!(
            asm.first_missing(),
            2,
            "the missing suffix starts after the received prefix"
        );
        assert!(
            asm.assemble().is_none(),
            "incomplete assembly yields nothing"
        );
        // Chunks of a different snapshot (other checkpoint) never mix in.
        let other = SnapshotRef::new(snapshot(vec![entry("x", 1, 1)], 16));
        let foreign = SnapshotChunk::plan(&other, 4096);
        assert!(!asm.accept(&foreign[0]));
        assert_eq!(asm.received_chunks(), 2);
    }

    #[test]
    fn oversized_entry_and_empty_snapshot_still_plan() {
        let big = Value(vec![7u8; 512]);
        let snap = SnapshotRef::new(snapshot(
            vec![
                (Key::from("a"), big.clone(), Version::new(1, 0)),
                (Key::from("b"), big, Version::new(1, 0)),
            ],
            4,
        ));
        let chunks = SnapshotChunk::plan(&snap, 64);
        assert_eq!(chunks.len(), 2, "one oversized entry per chunk");
        assert!(chunks.iter().all(|c| c.entries().len() == 1));

        let empty = SnapshotRef::new(snapshot(vec![], 0));
        let chunks = SnapshotChunk::plan(&empty, 4096);
        assert_eq!(chunks.len(), 1);
        assert!(chunks[0].entries().is_empty());
        let asm = SnapshotAssembler::new(&chunks[0]);
        assert!(asm.is_complete());
        assert!(asm.assemble().unwrap().verify());
    }

    #[test]
    fn delta_applies_over_its_base_and_verifies_the_chain_link() {
        let base = snapshot(vec![entry("a", 1, 1), entry("b", 2, 2)], 4);
        // Block 5..8 rewrote "b" and introduced "c".
        let next_entries = vec![entry("a", 1, 1), entry("b", 9, 6), entry("c", 3, 7)];
        let next_hash = hash_state_entries(next_entries.iter().map(|(k, v, ver)| (k, v, *ver)));
        let delta = DeltaSnapshot {
            base: base.checkpoint,
            checkpoint: Checkpoint {
                height: 8,
                state_hash: next_hash,
            },
            last_block_hash: Hash256([8; 32]),
            entries: vec![entry("b", 9, 6), entry("c", 3, 7)],
        };
        assert!(
            delta.wire_size() < snapshot(next_entries.clone(), 8).wire_size() + Checkpoint::WIRE
        );
        let applied = delta.apply_to(&base).expect("chained delta applies");
        assert_eq!(applied.entries, next_entries);
        assert_eq!(applied.checkpoint.height, 8);
        assert!(applied.verify());

        // A delta over the wrong base is refused outright.
        let wrong_base = snapshot(vec![entry("a", 5, 1)], 4);
        assert!(delta.apply_to(&wrong_base).is_none());
        // A tampered delta fails the chain-link hash.
        let mut forged = delta.clone();
        forged.entries[0].1 = Value::from_u64(999);
        assert!(forged.apply_to(&base).is_none());
    }

    #[test]
    fn wire_size_grows_with_state_and_is_cached_by_ref() {
        let small = snapshot(vec![entry("a", 1, 1)], 4);
        let large = snapshot((0..50).map(|i| entry(&format!("k{i}"), i, 1)).collect(), 4);
        assert!(large.wire_size() > small.wire_size());
        let computed = large.wire_size();
        let shared = SnapshotRef::new(large);
        assert_eq!(shared.wire_size(), computed);
        let served = shared.clone();
        assert!(
            SnapshotRef::ptr_eq(&shared, &served),
            "serving a snapshot must be a pointer bump"
        );
        assert_eq!(shared, served);
    }
}
