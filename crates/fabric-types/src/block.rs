//! Blocks and the hash chain.

use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crate::crypto::{Hash256, Sha256};
use crate::transaction::Transaction;

/// A block header: number, link to the previous block, and a digest of the
/// block's transactions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlockHeader {
    /// Height of this block; the genesis block is number 0.
    pub number: u64,
    /// Hash of the previous block's header ([`Hash256::ZERO`] for genesis).
    pub prev_hash: Hash256,
    /// Digest over the ordered transaction list.
    pub data_hash: Hash256,
}

impl BlockHeader {
    /// The header's own hash, which the next block must link to.
    pub fn hash(&self) -> Hash256 {
        let mut h = Sha256::new();
        h.update_u64(self.number);
        h.update(&self.prev_hash.0);
        h.update(&self.data_hash.0);
        h.finalize()
    }
}

/// A block: header, ordered transactions, and wire-size padding standing in
/// for metadata this model does not materialize (orderer signatures,
/// last-config pointers).
///
/// Blocks are immutable once cut; dissemination code shares them as
/// [`BlockRef`] so a 100-peer simulation stores each block once.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Block {
    /// The chained header.
    pub header: BlockHeader,
    /// Transactions in commit order.
    pub txs: Vec<Transaction>,
    /// Extra bytes accounted on the wire.
    pub padding: u32,
}

/// Shared, zero-copy handle to an immutable block.
///
/// The block content lives in one `Arc` allocation: cloning a `BlockRef`
/// (as every gossip hop does when fanning a block out to its targets) is a
/// reference-count bump, never a payload copy. The wire size is computed
/// once at construction and cached, so the simulator's per-hop byte
/// accounting — which reads the size at both departure and delivery —
/// never re-walks the transaction list.
///
/// `BlockRef` dereferences to [`Block`], so all read accessors
/// (`number()`, `hash()`, `txs`, ...) are available directly. The inherent
/// [`BlockRef::wire_size`] shadows [`Block::wire_size`] with the cached
/// value.
#[derive(Debug, Clone)]
pub struct BlockRef {
    inner: Arc<Block>,
    wire_size: usize,
}

impl BlockRef {
    /// Wraps `block` in a shared handle, precomputing its wire size.
    pub fn new(block: Block) -> Self {
        let wire_size = block.wire_size();
        BlockRef {
            inner: Arc::new(block),
            wire_size,
        }
    }

    /// Cached size of the block on the wire, in bytes.
    pub fn wire_size(&self) -> usize {
        self.wire_size
    }

    /// Whether two handles share the same allocation (used by tests to
    /// prove dissemination never duplicates a payload).
    pub fn ptr_eq(a: &BlockRef, b: &BlockRef) -> bool {
        Arc::ptr_eq(&a.inner, &b.inner)
    }
}

impl std::ops::Deref for BlockRef {
    type Target = Block;
    fn deref(&self) -> &Block {
        &self.inner
    }
}

impl From<Block> for BlockRef {
    fn from(block: Block) -> Self {
        BlockRef::new(block)
    }
}

impl PartialEq for BlockRef {
    fn eq(&self, other: &Self) -> bool {
        // Pointer equality is the overwhelmingly common case (shared
        // payloads); fall back to structural comparison across runs.
        Arc::ptr_eq(&self.inner, &other.inner) || *self.inner == *other.inner
    }
}

impl Block {
    /// Builds a block linking to `prev_hash`, computing the data hash over
    /// the given transactions.
    pub fn new(number: u64, prev_hash: Hash256, txs: Vec<Transaction>) -> Self {
        let data_hash = Self::data_hash(&txs);
        Block {
            header: BlockHeader {
                number,
                prev_hash,
                data_hash,
            },
            txs,
            padding: 0,
        }
    }

    /// The genesis block: number 0, zero previous hash, no transactions.
    pub fn genesis() -> Self {
        Block::new(0, Hash256::ZERO, Vec::new())
    }

    /// Sets the wire-size padding (builder style).
    pub fn with_padding(mut self, padding: u32) -> Self {
        self.padding = padding;
        self
    }

    /// Digest over the ordered transaction list.
    pub fn data_hash(txs: &[Transaction]) -> Hash256 {
        let mut h = Sha256::new();
        h.update_u64(txs.len() as u64);
        for tx in txs {
            h.update(&tx.digest().0);
        }
        h.finalize()
    }

    /// This block's header hash.
    pub fn hash(&self) -> Hash256 {
        self.header.hash()
    }

    /// Height of this block.
    pub fn number(&self) -> u64 {
        self.header.number
    }

    /// Whether this block correctly chains onto `prev`: consecutive number
    /// and matching previous-hash link.
    pub fn follows(&self, prev: &Block) -> bool {
        self.header.number == prev.header.number + 1 && self.header.prev_hash == prev.hash()
    }

    /// Whether the stored data hash matches the transactions — detects a
    /// tampered or corrupted payload.
    pub fn data_intact(&self) -> bool {
        self.header.data_hash == Self::data_hash(&self.txs)
    }

    /// Size of the block on the wire, in bytes.
    pub fn wire_size(&self) -> usize {
        const HEADER: usize = 8 + 32 + 32 + 16; // number, two hashes, framing
        HEADER + self.txs.iter().map(Transaction::wire_size).sum::<usize>() + self.padding as usize
    }
}

/// Verifies the hash-chain integrity of a sequence of blocks starting at
/// any height. Returns the height of the first broken link, or `Ok(())`.
///
/// # Errors
///
/// Returns `Err(height)` for the first block that fails to chain onto its
/// predecessor or whose data hash does not match its transactions.
pub fn verify_chain(blocks: &[BlockRef]) -> Result<(), u64> {
    for (i, block) in blocks.iter().enumerate() {
        if !block.data_intact() {
            return Err(block.number());
        }
        if i > 0 && !block.follows(&blocks[i - 1]) {
            return Err(block.number());
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{ClientId, TxId};
    use crate::rwset::RwSet;

    fn tx(id: u64) -> Transaction {
        Transaction::new(
            TxId(id),
            "cc",
            ClientId(0),
            RwSet::builder().write_u64("k", id).build(),
        )
    }

    fn chain(len: usize) -> Vec<BlockRef> {
        let mut blocks = vec![BlockRef::new(Block::genesis())];
        for n in 1..len as u64 {
            let prev = blocks.last().unwrap().hash();
            blocks.push(BlockRef::new(Block::new(
                n,
                prev,
                vec![tx(n * 10), tx(n * 10 + 1)],
            )));
        }
        blocks
    }

    #[test]
    fn genesis_shape() {
        let g = Block::genesis();
        assert_eq!(g.number(), 0);
        assert_eq!(g.header.prev_hash, Hash256::ZERO);
        assert!(g.txs.is_empty());
        assert!(g.data_intact());
    }

    #[test]
    fn follows_checks_number_and_link() {
        let blocks = chain(3);
        assert!(blocks[1].follows(&blocks[0]));
        assert!(blocks[2].follows(&blocks[1]));
        assert!(!blocks[2].follows(&blocks[0]));
    }

    #[test]
    fn verify_chain_accepts_good_chain() {
        assert_eq!(verify_chain(&chain(10)), Ok(()));
        assert_eq!(verify_chain(&[]), Ok(()));
    }

    #[test]
    fn verify_chain_detects_broken_link() {
        let mut blocks = chain(5);
        // Replace block 3 with one that links to block 1 instead of 2.
        let bogus = Block::new(3, blocks[1].hash(), vec![tx(99)]);
        blocks[3] = BlockRef::new(bogus);
        assert_eq!(verify_chain(&blocks), Err(3));
    }

    #[test]
    fn verify_chain_detects_tampered_data() {
        let blocks = chain(3);
        let mut tampered = (*blocks[1]).clone();
        tampered.txs.push(tx(12345));
        let mut blocks2 = blocks.clone();
        blocks2[1] = BlockRef::new(tampered);
        assert_eq!(verify_chain(&blocks2), Err(1));
    }

    #[test]
    fn header_hash_depends_on_every_field() {
        let blocks = chain(2);
        let h = blocks[1].header;
        let mut n = h;
        n.number += 1;
        assert_ne!(h.hash(), n.hash());
        let mut p = h;
        p.prev_hash = Hash256([1; 32]);
        assert_ne!(h.hash(), p.hash());
        let mut d = h;
        d.data_hash = Hash256([2; 32]);
        assert_ne!(h.hash(), d.hash());
    }

    #[test]
    fn blockref_caches_wire_size_and_shares_the_allocation() {
        let block = Block::new(1, Hash256::ZERO, vec![tx(1), tx(2)]).with_padding(160_000);
        let computed = block.wire_size();
        let shared = BlockRef::new(block);
        assert_eq!(shared.wire_size(), computed);
        let hop = shared.clone();
        assert!(
            BlockRef::ptr_eq(&shared, &hop),
            "clone must be a pointer bump"
        );
        assert_eq!(hop.wire_size(), computed);
        assert_eq!(shared, hop);
        // A structurally equal but separately allocated block still compares
        // equal (cross-run comparisons in the determinism tests rely on it).
        let rebuilt =
            BlockRef::new(Block::new(1, Hash256::ZERO, vec![tx(1), tx(2)]).with_padding(160_000));
        assert!(!BlockRef::ptr_eq(&shared, &rebuilt));
        assert_eq!(shared, rebuilt);
    }

    #[test]
    fn wire_size_counts_txs_and_padding() {
        let b = Block::new(1, Hash256::ZERO, vec![tx(1), tx(2)]);
        let base = b.wire_size();
        assert!(base > 88);
        let padded = b.clone().with_padding(160_000);
        assert_eq!(padded.wire_size(), base + 160_000);
    }
}
