//! Transactions, endorsements and endorsement policies.

use serde::{Deserialize, Serialize};

use crypto::{Hash256, Sha256, Signature};

use crate::crypto;
use crate::ids::{ClientId, PeerId, TxId};
use crate::msp::Msp;
use crate::rwset::RwSet;

/// An endorsement: a peer's signature over a transaction digest, attesting
/// that simulating the chaincode produced this read/write set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Endorsement {
    /// The endorsing peer.
    pub endorser: PeerId,
    /// The endorser's signature over the transaction digest.
    pub signature: Signature,
}

/// An endorsement policy, checked at validation time.
///
/// Fabric policies are boolean expressions over principals; the two shapes
/// used in the paper's experiments (a single endorser, and k-out-of-n) are
/// covered here.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum EndorsementPolicy {
    /// Any one valid endorsement from an enrolled peer satisfies the policy.
    AnyMember,
    /// At least `required` valid endorsements from the listed candidates.
    OutOf {
        /// Minimum number of distinct valid endorsements.
        required: usize,
        /// The peers whose endorsements count.
        candidates: Vec<PeerId>,
    },
}

impl EndorsementPolicy {
    /// A policy satisfied by one signature from the given peer.
    pub fn single(endorser: PeerId) -> Self {
        EndorsementPolicy::OutOf {
            required: 1,
            candidates: vec![endorser],
        }
    }

    /// Checks the policy against a transaction digest and its endorsements,
    /// verifying every counted signature through the MSP.
    pub fn is_satisfied(&self, msp: &Msp, digest: &Hash256, endorsements: &[Endorsement]) -> bool {
        match self {
            EndorsementPolicy::AnyMember => endorsements.iter().any(|e| {
                msp.is_member(e.endorser) && msp.verify(e.endorser, &digest.0, &e.signature)
            }),
            EndorsementPolicy::OutOf {
                required,
                candidates,
            } => {
                let mut seen: Vec<PeerId> = Vec::new();
                for e in endorsements {
                    if candidates.contains(&e.endorser)
                        && !seen.contains(&e.endorser)
                        && msp.verify(e.endorser, &digest.0, &e.signature)
                    {
                        seen.push(e.endorser);
                    }
                }
                seen.len() >= *required
            }
        }
    }
}

/// A transaction proposal as it travels through ordering and validation.
///
/// `payload_padding` inflates the wire size to emulate the parts of a real
/// Fabric transaction this model does not materialize (certificates,
/// chaincode arguments, channel headers); the dissemination experiments use
/// it to reach the paper's ~160 KB blocks of 50 transactions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Transaction {
    /// Unique transaction id.
    pub id: TxId,
    /// Name of the chaincode that produced the read/write set.
    pub chaincode: String,
    /// The submitting client.
    pub creator: ClientId,
    /// The simulated read/write set.
    pub rwset: RwSet,
    /// Endorsements collected by the client.
    pub endorsements: Vec<Endorsement>,
    /// Extra bytes accounted on the wire (see type docs).
    pub payload_padding: u32,
}

impl Transaction {
    /// Creates a transaction with no endorsements attached yet.
    pub fn new(id: TxId, chaincode: impl Into<String>, creator: ClientId, rwset: RwSet) -> Self {
        Transaction {
            id,
            chaincode: chaincode.into(),
            creator,
            rwset,
            endorsements: Vec::new(),
            payload_padding: 0,
        }
    }

    /// Sets the wire-size padding (builder style).
    pub fn with_padding(mut self, padding: u32) -> Self {
        self.payload_padding = padding;
        self
    }

    /// The digest endorsers sign: covers id, chaincode, creator and rwset.
    pub fn digest(&self) -> Hash256 {
        let mut h = Sha256::new();
        h.update_u64(self.id.0);
        h.update(self.chaincode.as_bytes());
        h.update_u32(self.creator.0);
        for r in &self.rwset.reads {
            h.update(r.key.0.as_bytes());
            match r.version {
                Some(v) => {
                    h.update_u64(v.block_num);
                    h.update_u32(v.tx_num);
                }
                None => h.update(&[0xff]),
            }
        }
        for w in &self.rwset.writes {
            h.update(w.key.0.as_bytes());
            h.update(&w.value.0);
        }
        h.finalize()
    }

    /// Appends `endorser`'s endorsement, signing through the MSP.
    /// Returns `false` if the peer is not enrolled.
    pub fn endorse(&mut self, msp: &Msp, endorser: PeerId) -> bool {
        let digest = self.digest();
        match msp.sign_as(endorser, &digest.0) {
            Some(signature) => {
                self.endorsements.push(Endorsement {
                    endorser,
                    signature,
                });
                true
            }
            None => false,
        }
    }

    /// Size of the transaction on the wire, in bytes.
    pub fn wire_size(&self) -> usize {
        const HEADER: usize = 64; // ids, lengths, channel header
        HEADER
            + self.chaincode.len()
            + self.rwset.wire_size()
            + self.endorsements.len() * (Signature::WIRE_SIZE + 8)
            + self.payload_padding as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rwset::Version;

    fn tx(id: u64) -> Transaction {
        let rwset = RwSet::builder()
            .read("counter1", Some(Version::new(1, 0)))
            .write_u64("counter1", 7)
            .build();
        Transaction::new(TxId(id), "increment", ClientId(0), rwset)
    }

    #[test]
    fn digest_changes_with_content() {
        let a = tx(1);
        let b = tx(2);
        assert_ne!(a.digest(), b.digest());
        let mut c = tx(1);
        assert_eq!(a.digest(), c.digest());
        c.rwset.writes[0].value = crate::rwset::Value::from_u64(8);
        assert_ne!(a.digest(), c.digest());
    }

    #[test]
    fn endorse_attaches_verifiable_signature() {
        let msp = Msp::single_org(3);
        let mut t = tx(1);
        assert!(t.endorse(&msp, PeerId(2)));
        assert_eq!(t.endorsements.len(), 1);
        let e = &t.endorsements[0];
        assert!(msp.verify(e.endorser, &t.digest().0, &e.signature));
        assert!(!t.endorse(&msp, PeerId(99)));
    }

    #[test]
    fn any_member_policy() {
        let msp = Msp::single_org(3);
        let mut t = tx(1);
        let policy = EndorsementPolicy::AnyMember;
        assert!(!policy.is_satisfied(&msp, &t.digest(), &t.endorsements));
        t.endorse(&msp, PeerId(0));
        assert!(policy.is_satisfied(&msp, &t.digest(), &t.endorsements));
    }

    #[test]
    fn out_of_policy_counts_distinct_valid_candidates() {
        let msp = Msp::single_org(5);
        let mut t = tx(1);
        let policy = EndorsementPolicy::OutOf {
            required: 2,
            candidates: vec![PeerId(0), PeerId(1), PeerId(2)],
        };
        t.endorse(&msp, PeerId(0));
        assert!(!policy.is_satisfied(&msp, &t.digest(), &t.endorsements));
        // A duplicate endorsement from the same peer must not count twice.
        t.endorse(&msp, PeerId(0));
        assert!(!policy.is_satisfied(&msp, &t.digest(), &t.endorsements));
        // An endorsement from a non-candidate must not count.
        t.endorse(&msp, PeerId(4));
        assert!(!policy.is_satisfied(&msp, &t.digest(), &t.endorsements));
        t.endorse(&msp, PeerId(2));
        assert!(policy.is_satisfied(&msp, &t.digest(), &t.endorsements));
    }

    #[test]
    fn tampered_rwset_invalidates_endorsement() {
        let msp = Msp::single_org(2);
        let mut t = tx(1);
        t.endorse(&msp, PeerId(1));
        t.rwset.writes[0].value = crate::rwset::Value::from_u64(999);
        let policy = EndorsementPolicy::single(PeerId(1));
        assert!(!policy.is_satisfied(&msp, &t.digest(), &t.endorsements));
    }

    #[test]
    fn wire_size_includes_padding_and_endorsements() {
        let msp = Msp::single_org(2);
        let mut t = tx(1);
        let bare = t.wire_size();
        t.endorse(&msp, PeerId(0));
        let endorsed = t.wire_size();
        assert!(endorsed > bare);
        let padded = t.clone().with_padding(1000).wire_size();
        assert_eq!(padded, endorsed + 1000);
    }
}
