//! Simulated membership service provider (MSP).
//!
//! Fabric assumes a trusted authority that certifies the identity of every
//! infrastructure node. This module plays that role for the reproduction:
//! it enrolls peers into organizations, hands out deterministic signing
//! keys, and verifies signatures on behalf of any party (in the simulation
//! the MSP is the single source of truth for key material, which stands in
//! for certificate-based public-key verification).

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::crypto::{sign, verify, SecretKey, Signature};
use crate::ids::{OrgId, PeerId};

/// A certified identity: the binding of a peer to an organization.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Identity {
    /// The enrolled peer.
    pub peer: PeerId,
    /// The organization that owns the peer.
    pub org: OrgId,
    /// Serial number of the simulated enrollment certificate.
    pub cert_serial: u64,
}

/// The membership service provider for one channel.
///
/// ```
/// use fabric_types::ids::{OrgId, PeerId};
/// use fabric_types::msp::Msp;
///
/// let mut msp = Msp::new();
/// msp.enroll(PeerId(0), OrgId(0));
/// let sig = msp.sign_as(PeerId(0), b"hello").unwrap();
/// assert!(msp.verify(PeerId(0), b"hello", &sig));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Msp {
    members: BTreeMap<PeerId, (Identity, SecretKey)>,
    next_serial: u64,
}

impl Msp {
    /// An MSP with no enrolled members.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds an MSP for a single organization with peers `0..n` — the
    /// paper's deployment shape (one organization of 100 peers).
    pub fn single_org(n: usize) -> Self {
        let mut msp = Msp::new();
        for i in 0..n {
            msp.enroll(PeerId(i as u32), OrgId(0));
        }
        msp
    }

    /// Enrolls `peer` into `org`, replacing any previous enrollment.
    /// Returns the certified identity.
    pub fn enroll(&mut self, peer: PeerId, org: OrgId) -> Identity {
        let serial = self.next_serial;
        self.next_serial += 1;
        let identity = Identity {
            peer,
            org,
            cert_serial: serial,
        };
        let key = SecretKey::derive("msp-enroll", u64::from(peer.0) << 16 | u64::from(org.0));
        self.members.insert(peer, (identity, key));
        identity
    }

    /// Whether `peer` is enrolled.
    pub fn is_member(&self, peer: PeerId) -> bool {
        self.members.contains_key(&peer)
    }

    /// The identity of `peer`, if enrolled.
    pub fn identity(&self, peer: PeerId) -> Option<Identity> {
        self.members.get(&peer).map(|(id, _)| *id)
    }

    /// The organization of `peer`, if enrolled.
    pub fn org_of(&self, peer: PeerId) -> Option<OrgId> {
        self.identity(peer).map(|id| id.org)
    }

    /// All enrolled peers, in id order.
    pub fn peers(&self) -> impl Iterator<Item = PeerId> + '_ {
        self.members.keys().copied()
    }

    /// All peers of `org`, in id order.
    pub fn peers_of_org(&self, org: OrgId) -> Vec<PeerId> {
        self.members
            .values()
            .filter(|(id, _)| id.org == org)
            .map(|(id, _)| id.peer)
            .collect()
    }

    /// Number of enrolled peers.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// `true` when no peer is enrolled.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Signs `message` with `peer`'s key; `None` if the peer is not enrolled.
    pub fn sign_as(&self, peer: PeerId, message: &[u8]) -> Option<Signature> {
        self.members.get(&peer).map(|(_, key)| sign(key, message))
    }

    /// Verifies `sig` as `peer`'s signature over `message`. Unenrolled
    /// signers always fail verification.
    pub fn verify(&self, peer: PeerId, message: &[u8], sig: &Signature) -> bool {
        match self.members.get(&peer) {
            Some((_, key)) => verify(key, message, sig),
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enroll_and_query() {
        let mut msp = Msp::new();
        let id = msp.enroll(PeerId(7), OrgId(2));
        assert_eq!(id.peer, PeerId(7));
        assert_eq!(id.org, OrgId(2));
        assert!(msp.is_member(PeerId(7)));
        assert!(!msp.is_member(PeerId(8)));
        assert_eq!(msp.org_of(PeerId(7)), Some(OrgId(2)));
        assert_eq!(msp.org_of(PeerId(8)), None);
    }

    #[test]
    fn single_org_enrolls_dense_ids() {
        let msp = Msp::single_org(5);
        assert_eq!(msp.len(), 5);
        let peers: Vec<_> = msp.peers().collect();
        assert_eq!(peers, (0..5).map(PeerId).collect::<Vec<_>>());
        assert_eq!(msp.peers_of_org(OrgId(0)).len(), 5);
        assert!(msp.peers_of_org(OrgId(1)).is_empty());
    }

    #[test]
    fn signatures_verify_only_for_the_right_signer() {
        let msp = Msp::single_org(3);
        let sig = msp.sign_as(PeerId(1), b"block 9").unwrap();
        assert!(msp.verify(PeerId(1), b"block 9", &sig));
        assert!(!msp.verify(PeerId(2), b"block 9", &sig));
        assert!(!msp.verify(PeerId(1), b"block 10", &sig));
        assert!(!msp.verify(PeerId(9), b"block 9", &sig));
        assert!(msp.sign_as(PeerId(9), b"x").is_none());
    }

    #[test]
    fn serials_increase_monotonically() {
        let mut msp = Msp::new();
        let a = msp.enroll(PeerId(0), OrgId(0));
        let b = msp.enroll(PeerId(1), OrgId(0));
        assert!(b.cert_serial > a.cert_serial);
    }

    #[test]
    fn re_enrollment_replaces_identity() {
        let mut msp = Msp::new();
        msp.enroll(PeerId(0), OrgId(0));
        let sig_old = msp.sign_as(PeerId(0), b"m").unwrap();
        msp.enroll(PeerId(0), OrgId(1));
        assert_eq!(msp.org_of(PeerId(0)), Some(OrgId(1)));
        // The key is org-bound, so the old signature no longer verifies.
        assert!(!msp.verify(PeerId(0), b"m", &sig_old));
        assert_eq!(msp.len(), 1);
    }
}
