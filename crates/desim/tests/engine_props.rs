//! Property tests for the simulation engine: causality, per-link FIFO,
//! byte accounting and replay determinism under arbitrary traffic.

use desim::{
    Ctx, Duration, LatencyModel, Message, NetworkConfig, NodeId, Protocol, Simulation, Time,
};
use proptest::prelude::*;

#[derive(Clone, Debug)]
struct Packet {
    seq: u64,
    size: u16,
}

impl Message for Packet {
    fn wire_size(&self) -> usize {
        usize::from(self.size) + 1 // never zero bytes
    }
}

/// Records every delivery as (time, to, from, seq).
#[derive(Default)]
struct Sink {
    deliveries: Vec<(u64, u32, u32, u64)>,
}

impl Protocol for Sink {
    type Msg = Packet;
    type Timer = ();
    fn on_message(&mut self, ctx: &mut Ctx<'_, Packet, ()>, to: NodeId, from: NodeId, msg: Packet) {
        self.deliveries
            .push((ctx.now().as_nanos(), to.0, from.0, msg.seq));
    }
    fn on_timer(&mut self, _: &mut Ctx<'_, Packet, ()>, _: NodeId, _: ()) {}
}

/// A randomized traffic plan: (sender, receiver, size) triples.
fn traffic() -> impl Strategy<Value = Vec<(u32, u32, u16)>> {
    proptest::collection::vec((0u32..6, 0u32..6, 0u16..2000), 1..60)
}

fn run(plan: &[(u32, u32, u16)], cfg: NetworkConfig, seed: u64) -> Vec<(u64, u32, u32, u64)> {
    let mut sim = Simulation::new(Sink::default(), cfg, seed);
    sim.with_ctx(|_, ctx| {
        for (i, (from, to, size)) in plan.iter().enumerate() {
            ctx.send(
                NodeId(*from),
                NodeId(*to),
                Packet {
                    seq: i as u64,
                    size: *size,
                },
            );
        }
    });
    sim.run_until_idle();
    sim.into_protocol().deliveries
}

proptest! {
    /// No delivery can precede the message's send time plus the link's
    /// minimum latency.
    #[test]
    fn causality_holds(plan in traffic()) {
        let mut cfg = NetworkConfig::ideal(6);
        cfg.latency = LatencyModel::Uniform {
            min: Duration::from_micros(50),
            max: Duration::from_micros(500),
        };
        let deliveries = run(&plan, cfg, 7);
        for (at, _, _, _) in &deliveries {
            prop_assert!(*at >= 50_000, "delivered at {at} ns, before min latency");
        }
        prop_assert_eq!(deliveries.len(), plan.len(), "lossless network delivers everything");
    }

    /// With constant latency and no processing jitter, each (from, to)
    /// pair's messages arrive in send order (FIFO links).
    #[test]
    fn constant_latency_links_are_fifo(plan in traffic()) {
        let mut cfg = NetworkConfig::ideal(6);
        cfg.latency = LatencyModel::Constant(Duration::from_micros(100));
        let deliveries = run(&plan, cfg, 3);
        for (a_idx, a) in deliveries.iter().enumerate() {
            for b in &deliveries[a_idx + 1..] {
                if a.1 == b.1 && a.2 == b.2 {
                    // Same link: later-listed delivery must not carry an
                    // earlier sequence number at an earlier time.
                    prop_assert!(a.0 <= b.0);
                    if a.0 == b.0 {
                        continue;
                    }
                    prop_assert!(a.3 < b.3, "link {}->{} reordered", a.2, a.1);
                }
            }
        }
    }

    /// Byte accounting equals the sum of wire sizes, per sender.
    #[test]
    fn byte_accounting_is_exact(plan in traffic()) {
        let cfg = NetworkConfig::ideal(6);
        let mut sim = Simulation::new(Sink::default(), cfg, 1);
        sim.with_ctx(|_, ctx| {
            for (i, (from, to, size)) in plan.iter().enumerate() {
                ctx.send(NodeId(*from), NodeId(*to), Packet { seq: i as u64, size: *size });
            }
        });
        sim.run_until_idle();
        for node in 0..6u32 {
            let expected: u64 = plan
                .iter()
                .filter(|(f, _, _)| *f == node)
                .map(|(_, _, s)| u64::from(*s) + 1)
                .sum();
            prop_assert_eq!(sim.metrics().total_sent(NodeId(node)), expected);
        }
    }

    /// The same seed replays the same trace; a different seed (with jitter
    /// in play) almost always differs in timing.
    #[test]
    fn replay_is_deterministic(plan in traffic(), seed in 0u64..1000) {
        let cfg = || {
            let mut c = NetworkConfig::lan(6);
            c.loss = 0.05;
            c
        };
        let a = run(&plan, cfg(), seed);
        let b = run(&plan, cfg(), seed);
        prop_assert_eq!(a, b);
    }

    /// run_until(t) then run_until_idle is equivalent to run_until_idle.
    #[test]
    fn split_runs_compose(plan in traffic(), split_us in 0u64..2000) {
        let cfg = || NetworkConfig::lan(6);
        let whole = run(&plan, cfg(), 5);

        let mut sim = Simulation::new(Sink::default(), cfg(), 5);
        sim.with_ctx(|_, ctx| {
            for (i, (from, to, size)) in plan.iter().enumerate() {
                ctx.send(NodeId(*from), NodeId(*to), Packet { seq: i as u64, size: *size });
            }
        });
        sim.run_until(Time::ZERO + Duration::from_micros(split_us));
        sim.run_until_idle();
        prop_assert_eq!(sim.into_protocol().deliveries, whole);
    }
}
