//! Scheduler equivalence: the production timing wheel and the seed-style
//! binary-heap reference must pop identical `(time, seq, event)` streams —
//! cancelled-ghost positions included — on arbitrary workloads.
//!
//! The engine's determinism contract (same seed ⇒ byte-identical traces)
//! rests on the queue's exact `(time, insertion seq)` total order; these
//! properties pin the wheel to the reference under random pushes spanning
//! the near ring and the far-future heap, random cancellations (of live,
//! fired and double-cancelled events alike), and pops interleaved at
//! arbitrary points — the same interleaving a protocol produces when its
//! handlers schedule new work mid-drain.

use desim::sched::{HeapScheduler, Popped, Scheduler, TimingWheel};
use desim::{Duration, Time};
use proptest::prelude::*;

/// One scripted workload step.
#[derive(Debug, Clone)]
enum Op {
    /// Schedule an event `offset_ns` after the last popped instant.
    Push { offset_ns: u64, tag: u32 },
    /// Cancel the `nth` pushed event (mod pushes so far), live or not.
    Cancel { nth: usize },
    /// Pop once.
    Pop,
}

/// Raw op tuples (the vendored proptest has no mapped strategies):
/// `(selector, offset_ns, tag, nth)` decoded by [`decode`].
fn raw_ops() -> impl Strategy<Value = Vec<(u8, u64, u32, usize)>> {
    proptest::collection::vec(
        (0u8..8, 0u64..40_000_000_000, 0u32..1_000_000, 0usize..512),
        1..300,
    )
}

fn decode(raw: &[(u8, u64, u32, usize)]) -> Vec<Op> {
    raw.iter()
        .map(|(sel, offset_ns, tag, nth)| match sel {
            // Half the pushes stay within one wheel bucket of "now" so the
            // draining-bucket insert path is exercised hard.
            0 | 1 => Op::Push {
                offset_ns: offset_ns % 2_000_000,
                tag: *tag,
            },
            2 | 3 => Op::Push {
                offset_ns: *offset_ns,
                tag: *tag,
            },
            4 => Op::Cancel { nth: *nth },
            _ => Op::Pop,
        })
        .collect()
}

/// Drives one scheduler through the script. Pushes are anchored at the
/// last observed pop time (events are never scheduled in the past, as in
/// the engine), and the full pop stream — mid-script pops plus the final
/// drain — is returned for comparison.
fn run<S: Scheduler<u32>>(mut sched: S, script: &[Op]) -> Vec<Popped<u32>> {
    let mut now = Time::ZERO;
    let mut ids = Vec::new();
    let mut stream = Vec::new();
    let observe = |popped: Popped<u32>, now: &mut Time| {
        let at = match &popped {
            Popped::Event { at, .. } | Popped::Cancelled { at } => *at,
        };
        assert!(at >= *now, "pops must be monotone");
        *now = at;
        popped
    };
    for op in script {
        match op {
            Op::Push { offset_ns, tag } => {
                ids.push(sched.push(now + Duration::from_nanos(*offset_ns), *tag));
            }
            Op::Cancel { nth } => {
                if !ids.is_empty() {
                    sched.cancel(ids[nth % ids.len()]);
                }
            }
            Op::Pop => {
                if let Some(p) = sched.pop() {
                    stream.push(observe(p, &mut now));
                }
            }
        }
    }
    while let Some(p) = sched.pop() {
        stream.push(observe(p, &mut now));
    }
    assert!(sched.is_empty(), "drained schedulers report empty");
    stream
}

proptest! {
    /// The core property: identical pop streams on random workloads.
    #[test]
    fn wheel_and_heap_pop_identical_streams(raw in raw_ops()) {
        let script = decode(&raw);
        let wheel = run(TimingWheel::new(), &script);
        let heap = run(HeapScheduler::new(), &script);
        prop_assert_eq!(wheel, heap);
    }

    /// Without cancellations, every pushed event pops exactly once, in
    /// global `(time, seq)` order.
    #[test]
    fn all_live_events_pop_sorted(
        offsets in proptest::collection::vec(0u64..60_000_000_000, 1..200)
    ) {
        let mut wheel = TimingWheel::new();
        for (i, off) in offsets.iter().enumerate() {
            wheel.push(Time::from_nanos(*off), i as u32);
        }
        let mut popped = Vec::new();
        while let Some(p) = wheel.pop() {
            match p {
                Popped::Event { at, seq, payload } => popped.push((at, seq, payload)),
                Popped::Cancelled { .. } => prop_assert!(false, "nothing was cancelled"),
            }
        }
        prop_assert_eq!(popped.len(), offsets.len());
        for w in popped.windows(2) {
            prop_assert!((w[0].0, w[0].1) < (w[1].0, w[1].1), "out of order: {w:?}");
        }
    }

    /// Cancelling everything leaves only ghosts, at the right instants.
    #[test]
    fn cancel_all_yields_only_ghosts(
        offsets in proptest::collection::vec(0u64..60_000_000_000, 1..100)
    ) {
        let mut wheel = TimingWheel::new();
        let ids: Vec<_> = offsets
            .iter()
            .enumerate()
            .map(|(i, off)| wheel.push(Time::from_nanos(*off), i as u32))
            .collect();
        for id in ids {
            wheel.cancel(id);
        }
        let mut sorted = offsets.clone();
        sorted.sort_unstable();
        let mut ghost_times = Vec::new();
        while let Some(p) = wheel.pop() {
            match p {
                Popped::Cancelled { at } => ghost_times.push(at.as_nanos()),
                Popped::Event { .. } => prop_assert!(false, "everything was cancelled"),
            }
        }
        prop_assert_eq!(ghost_times, sorted);
    }
}

/// A deterministic heavy mix shaped like a gossip run: dense same-bucket
/// bursts, periodic far-future timers, cancels of both live and dead ids.
#[test]
fn dense_gossip_shaped_workload_matches() {
    let mut script = Vec::new();
    let mut x: u64 = 0x243f_6a88_85a3_08d3; // fixed splitmix-style stream
    let mut next = || {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        x >> 16
    };
    for i in 0..4000u32 {
        let r = next();
        match r % 10 {
            0..=4 => script.push(Op::Push {
                offset_ns: r % 3_000_000, // same-bucket chatter
                tag: i,
            }),
            5 => script.push(Op::Push {
                offset_ns: 4_000_000_000 + r % 30_000_000_000, // periodic timers
                tag: i,
            }),
            6 => script.push(Op::Cancel {
                nth: (r % 997) as usize,
            }),
            _ => script.push(Op::Pop),
        }
    }
    let wheel = run(TimingWheel::new(), &script);
    let heap = run(HeapScheduler::new(), &script);
    assert_eq!(wheel.len(), heap.len());
    assert_eq!(wheel, heap);
    assert!(
        wheel.iter().any(|p| matches!(p, Popped::Cancelled { .. })),
        "the mix must exercise cancellation ghosts"
    );
}
