//! Interned message-kind identifiers.
//!
//! The seed accounted per-kind traffic through `BTreeMap<&'static str, _>`
//! lookups — a string-keyed tree walk on every recorded send, paid once in
//! the engine's [`crate::NetMetrics`] and again in every protocol-level
//! per-kind counter. A [`KindId`] replaces the string key with a small
//! dense index into a process-wide registry: interning happens once per
//! kind (protocols cache the ids in `OnceLock` statics), and the hot path
//! becomes a bounds-checked array add.
//!
//! Ids are assigned in first-intern order, so their numeric values are an
//! artifact of which code path ran first — never expose them in reports.
//! Report-facing APIs ([`crate::NetMetrics::kinds`],
//! [`KindBytes::iter_named`]) resolve ids back to names and sort by name,
//! keeping rendered output independent of interning order.

use std::sync::{Mutex, OnceLock};

/// A process-wide interned message-kind tag (see module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct KindId(u32);

fn registry() -> &'static Mutex<Vec<&'static str>> {
    static REGISTRY: OnceLock<Mutex<Vec<&'static str>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

impl KindId {
    /// Interns `name`, returning its stable id. The first call for a given
    /// name registers it; later calls (from any thread) return the same id.
    ///
    /// This takes a registry lock and scans it — cheap, but not free. Hot
    /// paths should intern once and cache the id (e.g. in a `OnceLock`)
    /// rather than re-interning per message.
    pub fn intern(name: &'static str) -> KindId {
        let mut reg = registry().lock().expect("kind registry poisoned");
        if let Some(i) = reg.iter().position(|n| *n == name) {
            return KindId(i as u32);
        }
        let id = KindId(reg.len() as u32);
        reg.push(name);
        id
    }

    /// Looks a name up without registering it; `None` if never interned.
    pub fn lookup(name: &str) -> Option<KindId> {
        let reg = registry().lock().expect("kind registry poisoned");
        reg.iter()
            .position(|n| *n == name)
            .map(|i| KindId(i as u32))
    }

    /// The interned name of this id.
    pub fn name(self) -> &'static str {
        let reg = registry().lock().expect("kind registry poisoned");
        reg[self.0 as usize]
    }

    /// Dense index for direct array addressing.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Rebuilds an id from a dense index previously obtained via
    /// [`KindId::index`] (used when iterating dense stat arrays).
    pub(crate) fn from_index(i: usize) -> KindId {
        KindId(i as u32)
    }
}

/// Per-kind byte counters over interned ids: the dense replacement for the
/// protocol layer's `BTreeMap<&'static str, u64>` per-kind accounting.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct KindBytes {
    by_kind: Vec<u64>,
}

impl KindBytes {
    /// An empty counter set.
    pub fn new() -> Self {
        KindBytes::default()
    }

    /// Adds `bytes` to `kind`'s counter.
    pub fn add(&mut self, kind: KindId, bytes: u64) {
        let idx = kind.index();
        if self.by_kind.len() <= idx {
            self.by_kind.resize(idx + 1, 0);
        }
        self.by_kind[idx] += bytes;
    }

    /// Bytes recorded for `kind` (0 when the kind never occurred).
    pub fn get(&self, kind: KindId) -> u64 {
        self.by_kind.get(kind.index()).copied().unwrap_or(0)
    }

    /// Bytes recorded for a kind addressed by name (0 when absent).
    pub fn get_named(&self, name: &str) -> u64 {
        KindId::lookup(name).map_or(0, |id| self.get(id))
    }

    /// Total bytes across every kind.
    pub fn total(&self) -> u64 {
        self.by_kind.iter().sum()
    }

    /// Adds `other`'s counters into `self`.
    pub fn absorb(&mut self, other: &KindBytes) {
        if self.by_kind.len() < other.by_kind.len() {
            self.by_kind.resize(other.by_kind.len(), 0);
        }
        for (mine, theirs) in self.by_kind.iter_mut().zip(&other.by_kind) {
            *mine += theirs;
        }
    }

    /// Non-zero counters resolved to names, sorted by name — the stable,
    /// interning-order-independent view for reports.
    pub fn iter_named(&self) -> Vec<(&'static str, u64)> {
        let mut rows: Vec<(&'static str, u64)> = self
            .by_kind
            .iter()
            .enumerate()
            .filter(|(_, b)| **b > 0)
            .map(|(i, b)| (KindId(i as u32).name(), *b))
            .collect();
        rows.sort_unstable_by_key(|(name, _)| *name);
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent_and_lookup_matches() {
        let a = KindId::intern("kindtest-alpha");
        let b = KindId::intern("kindtest-alpha");
        assert_eq!(a, b);
        assert_eq!(KindId::lookup("kindtest-alpha"), Some(a));
        assert_eq!(a.name(), "kindtest-alpha");
        assert_eq!(KindId::lookup("kindtest-never-interned"), None);
    }

    #[test]
    fn distinct_names_get_distinct_ids() {
        let a = KindId::intern("kindtest-x");
        let b = KindId::intern("kindtest-y");
        assert_ne!(a, b);
        assert_ne!(a.index(), b.index());
    }

    #[test]
    fn kind_bytes_accumulate_absorb_and_render_sorted() {
        let blk = KindId::intern("kindtest-block");
        let dig = KindId::intern("kindtest-digest");
        let mut a = KindBytes::new();
        a.add(blk, 100);
        a.add(blk, 50);
        let mut b = KindBytes::new();
        b.add(dig, 7);
        a.absorb(&b);
        assert_eq!(a.get(blk), 150);
        assert_eq!(a.get_named("kindtest-digest"), 7);
        assert_eq!(a.get_named("kindtest-absent"), 0);
        assert_eq!(a.total(), 157);
        let named = a.iter_named();
        assert!(named.windows(2).all(|w| w[0].0 <= w[1].0), "sorted by name");
        assert!(named.contains(&("kindtest-block", 150)));
    }
}
