//! Parallel execution of independent simulation jobs.
//!
//! A figure or table of the paper is a grid of `(configuration, seed)`
//! cells, each a fully deterministic, self-contained event loop. Nothing
//! couples the cells, so they fan out across cores with zero effect on the
//! results: [`run_batch`] preserves input order and each job keeps its own
//! RNG, so a parallel sweep is byte-identical to the serial loop it
//! replaces.
//!
//! Work runs on a **persistent worker pool** spawned once per process
//! (lazily, on the first parallel batch) instead of fresh scoped threads
//! per call: a figure sweep issues dozens of batches back to back, and the
//! spawn/join cost of per-call threads is pure overhead. The submitting
//! thread always participates in its own batch, which both saturates the
//! machine with `cores - 1` pool workers and makes nested submissions
//! deadlock-free: a job that itself calls [`run_batch`] simply drains the
//! inner batch on its own thread if every pool worker is busy.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// Runs every job, fanning out across available cores, and returns the
/// results in input order.
///
/// Work is handed out dynamically (an atomic cursor), so uneven cell
/// durations — a 1 000-block original-gossip run next to a 100-block
/// ablation — still keep every core busy.
///
/// # Panics
///
/// Propagates the first panicking job's panic once the batch unwinds.
pub fn run_batch<J, R, F>(jobs: Vec<J>, run: F) -> Vec<R>
where
    J: Send,
    R: Send,
    F: Fn(J) -> R + Sync,
{
    let workers = std::thread::available_parallelism()
        .map(|cores| cores.get())
        .unwrap_or(1);
    run_batch_with_workers(jobs, workers, run)
}

/// [`run_batch`] with an explicit worker count. `workers <= 1` runs the
/// jobs on the calling thread. Exposed so the concurrent path can be
/// exercised deterministically even on single-core machines (and so
/// callers can cap the fan-out below the core count).
///
/// `workers` counts the submitting thread: at most `workers - 1` pool
/// threads join the batch alongside it.
pub fn run_batch_with_workers<J, R, F>(jobs: Vec<J>, workers: usize, run: F) -> Vec<R>
where
    J: Send,
    R: Send,
    F: Fn(J) -> R + Sync,
{
    let total = jobs.len();
    if total == 0 {
        return Vec::new();
    }
    let workers = workers.min(total);
    if workers <= 1 {
        return jobs.into_iter().map(run).collect();
    }

    let slots: Vec<Mutex<Option<J>>> = jobs.into_iter().map(|j| Mutex::new(Some(j))).collect();
    let results: Vec<Mutex<Option<R>>> = (0..total).map(|_| Mutex::new(None)).collect();

    let run_one = |index: usize| {
        let job = slots[index]
            .lock()
            .expect("job slot poisoned")
            .take()
            .expect("each job is claimed exactly once");
        let result = run(job);
        *results[index].lock().expect("result slot poisoned") = Some(result);
    };
    let job_ref: &(dyn Fn(usize) + Sync) = &run_one;
    // SAFETY: the fat pointer is only dereferenced by workers between
    // joining the batch and decrementing `running`; this function does not
    // return (and so `run_one` and its borrows stay live) until the batch
    // is removed from the queue with `completed == total && running == 0`,
    // observed under the pool lock that also orders the decrements.
    let job = unsafe {
        std::mem::transmute::<*const (dyn Fn(usize) + Sync), *const (dyn Fn(usize) + Sync)>(job_ref)
    };

    let batch = Arc::new(BatchState {
        job,
        total,
        max_pool_workers: workers - 1,
        joined: AtomicUsize::new(0),
        running: AtomicUsize::new(0),
        cursor: AtomicUsize::new(0),
        completed: AtomicUsize::new(0),
        panic: Mutex::new(None),
    });

    let pool = pool();
    {
        let mut queue = pool.queue.lock().expect("pool queue poisoned");
        queue.push_back(Arc::clone(&batch));
        pool.work.notify_all();
    }

    // The submitter works its own batch; pool workers join as they free up.
    drain(&batch);

    {
        let mut queue = pool.queue.lock().expect("pool queue poisoned");
        while batch.completed.load(Ordering::Acquire) < total
            || batch.running.load(Ordering::Acquire) != 0
        {
            queue = pool.done.wait(queue).expect("pool queue poisoned");
        }
        queue.retain(|b| !Arc::ptr_eq(b, &batch));
    }

    if let Some(payload) = batch
        .panic
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .take()
    {
        std::panic::resume_unwind(payload);
    }

    results
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("every job completed")
        })
        .collect()
}

/// One submitted batch: a lifetime-erased job closure plus the counters
/// that coordinate claiming, completion and panic propagation.
struct BatchState {
    /// `run_one` of the submitting call, lifetime-erased. Valid until the
    /// submitter observes `completed == total && running == 0`.
    job: *const (dyn Fn(usize) + Sync),
    total: usize,
    /// Pool workers allowed to join (the submitter participates on top).
    max_pool_workers: usize,
    /// Pool workers that ever joined this batch.
    joined: AtomicUsize,
    /// Pool workers currently inside the batch (holding the job pointer).
    running: AtomicUsize,
    /// Next unclaimed job index.
    cursor: AtomicUsize,
    /// Jobs fully executed (success or panic).
    completed: AtomicUsize,
    /// First panic payload observed, re-raised by the submitter.
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

// SAFETY: the raw job pointer targets a `Sync` closure, and the
// completion protocol above bounds every dereference to the submitting
// call's lifetime; all other fields are thread-safe primitives.
unsafe impl Send for BatchState {}
unsafe impl Sync for BatchState {}

/// Claims and executes indices until the batch's cursor is exhausted.
fn drain(batch: &BatchState) {
    loop {
        let index = batch.cursor.fetch_add(1, Ordering::Relaxed);
        if index >= batch.total {
            return;
        }
        // SAFETY: see `BatchState::job`.
        let job = unsafe { &*batch.job };
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| job(index)));
        if let Err(payload) = outcome {
            let mut slot = batch
                .panic
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            slot.get_or_insert(payload);
        }
        batch.completed.fetch_add(1, Ordering::Release);
    }
}

struct Pool {
    queue: Mutex<VecDeque<Arc<BatchState>>>,
    /// Wakes idle workers when a batch is submitted.
    work: Condvar,
    /// Wakes submitters when a worker leaves a batch.
    done: Condvar,
}

/// Worker threads spawned so far (pinned by the reuse test: a second batch
/// must not grow it).
static SPAWNED_WORKERS: AtomicUsize = AtomicUsize::new(0);

static POOL: OnceLock<Pool> = OnceLock::new();

fn pool() -> &'static Pool {
    POOL.get_or_init(|| {
        let cores = std::thread::available_parallelism()
            .map(|cores| cores.get())
            .unwrap_or(1);
        // The submitter always works its own batch, so `cores - 1` pool
        // workers saturate the machine; keep at least one so the
        // cross-thread path exists even on single-core boxes.
        let workers = cores.saturating_sub(1).max(1);
        for i in 0..workers {
            SPAWNED_WORKERS.fetch_add(1, Ordering::Relaxed);
            std::thread::Builder::new()
                .name(format!("desim-batch-{i}"))
                .spawn(worker_loop)
                .expect("spawn batch pool worker");
        }
        Pool {
            queue: Mutex::new(VecDeque::new()),
            work: Condvar::new(),
            done: Condvar::new(),
        }
    })
}

/// Pool workers spawned by [`pool`] (for diagnostics and the reuse test).
pub fn pool_workers_spawned() -> usize {
    SPAWNED_WORKERS.load(Ordering::Relaxed)
}

fn worker_loop() {
    // Blocks until the pool finishes initializing — `OnceLock::get_or_init`
    // makes late callers wait, and the initializer never waits on workers.
    let pool = pool();
    loop {
        let batch = {
            let mut queue = pool.queue.lock().expect("pool queue poisoned");
            loop {
                let open = queue.iter().find(|b| {
                    b.cursor.load(Ordering::Relaxed) < b.total
                        && b.joined.load(Ordering::Relaxed) < b.max_pool_workers
                });
                if let Some(b) = open {
                    let b = Arc::clone(b);
                    b.joined.fetch_add(1, Ordering::Relaxed);
                    b.running.fetch_add(1, Ordering::Relaxed);
                    break b;
                }
                queue = pool.work.wait(queue).expect("pool queue poisoned");
            }
        };
        drain(&batch);
        {
            let _queue = pool.queue.lock().expect("pool queue poisoned");
            batch.running.fetch_sub(1, Ordering::Release);
            pool.done.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_preserve_input_order() {
        let jobs: Vec<u64> = (0..64).collect();
        let out = run_batch(jobs, |j| j * j);
        assert_eq!(out, (0..64).map(|j| j * j).collect::<Vec<_>>());
    }

    #[test]
    fn empty_batch_is_fine() {
        let out: Vec<u32> = run_batch(Vec::<u32>::new(), |j| j);
        assert!(out.is_empty());
    }

    #[test]
    fn forced_multi_worker_path_matches_serial() {
        // Exercises the pool machinery even on one-core machines, where
        // `run_batch` would otherwise take the serial fallback.
        let jobs: Vec<u64> = (0..50).collect();
        let serial: Vec<u64> = jobs.iter().map(|j| j * 3 + 1).collect();
        let threaded = run_batch_with_workers(jobs, 4, |j| j * 3 + 1);
        assert_eq!(serial, threaded);
    }

    #[test]
    fn worker_count_exceeding_jobs_is_clamped() {
        let out = run_batch_with_workers(vec![1u32, 2], 16, |j| j + 1);
        assert_eq!(out, vec![2, 3]);
    }

    #[test]
    fn parallel_equals_serial() {
        // A job with real (deterministic) work: its result depends only on
        // its input, so scheduling order must not show.
        let work = |seed: u64| {
            use rand::rngs::StdRng;
            use rand::{RngExt, SeedableRng};
            let mut rng = StdRng::seed_from_u64(seed);
            (0..1000)
                .map(|_| rng.random_range(0u64..1_000_000))
                .sum::<u64>()
        };
        let jobs: Vec<u64> = (0..32).collect();
        let serial: Vec<u64> = jobs.iter().map(|&j| work(j)).collect();
        let parallel = run_batch(jobs, work);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn pool_threads_are_reused_across_batches() {
        let _ = run_batch_with_workers((0..16u64).collect(), 4, |j| j + 1);
        let after_first = pool_workers_spawned();
        assert!(after_first >= 1, "first parallel batch spawns the pool");
        for _ in 0..5 {
            let _ = run_batch_with_workers((0..16u64).collect(), 4, |j| j * 2);
        }
        assert_eq!(
            pool_workers_spawned(),
            after_first,
            "subsequent batches must reuse the pool, not spawn threads"
        );
    }

    #[test]
    fn nested_batches_complete_without_deadlock() {
        // Jobs that themselves fan out: the submitter-participates rule
        // guarantees progress even when every pool worker is occupied by
        // the outer batch.
        let outer: Vec<u64> = (0..8).collect();
        let out = run_batch_with_workers(outer, 4, |j| {
            let inner: Vec<u64> = (0..8).map(|k| j * 10 + k).collect();
            run_batch_with_workers(inner, 4, |k| k + 1)
                .iter()
                .sum::<u64>()
        });
        let expected: Vec<u64> = (0..8)
            .map(|j| (0..8).map(|k| j * 10 + k + 1).sum::<u64>())
            .collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn panics_propagate_to_the_submitter() {
        let result = std::panic::catch_unwind(|| {
            run_batch_with_workers((0..16u64).collect(), 4, |j| {
                if j == 7 {
                    panic!("boom at {j}");
                }
                j
            })
        });
        assert!(result.is_err(), "the job panic must reach the submitter");
        // The pool must stay serviceable afterwards.
        let out = run_batch_with_workers(vec![1u64, 2, 3], 4, |j| j * 2);
        assert_eq!(out, vec![2, 4, 6]);
    }
}
