//! Parallel execution of independent simulation jobs.
//!
//! A figure or table of the paper is a grid of `(configuration, seed)`
//! cells, each a fully deterministic, self-contained event loop. Nothing
//! couples the cells, so they fan out across cores with zero effect on the
//! results: [`run_batch`] preserves input order and each job keeps its own
//! RNG, so a parallel sweep is byte-identical to the serial loop it
//! replaces.
//!
//! Implemented with scoped threads and an atomic work index — no external
//! thread-pool dependency, no job cloning, results returned in order.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Runs every job, fanning out across available cores, and returns the
/// results in input order.
///
/// Work is handed out dynamically (an atomic cursor), so uneven cell
/// durations — a 1 000-block original-gossip run next to a 100-block
/// ablation — still keep every core busy.
///
/// # Panics
///
/// Propagates the first panicking job's panic once the batch unwinds.
pub fn run_batch<J, R, F>(jobs: Vec<J>, run: F) -> Vec<R>
where
    J: Send,
    R: Send,
    F: Fn(J) -> R + Sync,
{
    let workers = std::thread::available_parallelism()
        .map(|cores| cores.get())
        .unwrap_or(1);
    run_batch_with_workers(jobs, workers, run)
}

/// [`run_batch`] with an explicit worker count. `workers <= 1` runs the
/// jobs on the calling thread. Exposed so the concurrent path can be
/// exercised deterministically even on single-core machines (and so
/// callers can cap the fan-out below the core count).
pub fn run_batch_with_workers<J, R, F>(jobs: Vec<J>, workers: usize, run: F) -> Vec<R>
where
    J: Send,
    R: Send,
    F: Fn(J) -> R + Sync,
{
    let total = jobs.len();
    if total == 0 {
        return Vec::new();
    }
    let workers = workers.min(total);
    if workers <= 1 {
        return jobs.into_iter().map(run).collect();
    }

    let slots: Vec<Mutex<Option<J>>> = jobs.into_iter().map(|j| Mutex::new(Some(j))).collect();
    let results: Vec<Mutex<Option<R>>> = (0..total).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let index = cursor.fetch_add(1, Ordering::Relaxed);
                if index >= total {
                    break;
                }
                let job = slots[index]
                    .lock()
                    .expect("job slot poisoned")
                    .take()
                    .expect("each job is claimed exactly once");
                let result = run(job);
                *results[index].lock().expect("result slot poisoned") = Some(result);
            });
        }
    });

    results
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("every job completed")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_preserve_input_order() {
        let jobs: Vec<u64> = (0..64).collect();
        let out = run_batch(jobs, |j| j * j);
        assert_eq!(out, (0..64).map(|j| j * j).collect::<Vec<_>>());
    }

    #[test]
    fn empty_batch_is_fine() {
        let out: Vec<u32> = run_batch(Vec::<u32>::new(), |j| j);
        assert!(out.is_empty());
    }

    #[test]
    fn forced_multi_worker_path_matches_serial() {
        // Exercises the scoped-thread machinery even on one-core machines,
        // where `run_batch` would otherwise take the serial fallback.
        let jobs: Vec<u64> = (0..50).collect();
        let serial: Vec<u64> = jobs.iter().map(|j| j * 3 + 1).collect();
        let threaded = run_batch_with_workers(jobs, 4, |j| j * 3 + 1);
        assert_eq!(serial, threaded);
    }

    #[test]
    fn worker_count_exceeding_jobs_is_clamped() {
        let out = run_batch_with_workers(vec![1u32, 2], 16, |j| j + 1);
        assert_eq!(out, vec![2, 3]);
    }

    #[test]
    fn parallel_equals_serial() {
        // A job with real (deterministic) work: its result depends only on
        // its input, so scheduling order must not show.
        let work = |seed: u64| {
            use rand::rngs::StdRng;
            use rand::{RngExt, SeedableRng};
            let mut rng = StdRng::seed_from_u64(seed);
            (0..1000)
                .map(|_| rng.random_range(0u64..1_000_000))
                .sum::<u64>()
        };
        let jobs: Vec<u64> = (0..32).collect();
        let serial: Vec<u64> = jobs.iter().map(|&j| work(j)).collect();
        let parallel = run_batch(jobs, work);
        assert_eq!(serial, parallel);
    }
}
