//! Virtual time primitives.
//!
//! The simulator measures time in integer nanoseconds since the start of the
//! simulation. Two newtypes keep instants and spans apart: [`Time`] is a
//! point on the virtual clock and [`Duration`] is a span between two points.
//! Both are plain `u64` wrappers, so they are `Copy` and cheap to pass by
//! value.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// A point on the virtual clock, in nanoseconds since simulation start.
///
/// ```
/// use desim::{Time, Duration};
/// let t = Time::ZERO + Duration::from_millis(250);
/// assert_eq!(t.as_secs_f64(), 0.25);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Time(u64);

/// A span of virtual time, in nanoseconds.
///
/// ```
/// use desim::Duration;
/// assert_eq!(Duration::from_secs(2) / 4, Duration::from_millis(500));
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Duration(u64);

impl Time {
    /// The origin of the simulation clock.
    pub const ZERO: Time = Time(0);
    /// The largest representable instant; used as an "infinitely far" sentinel.
    pub const MAX: Time = Time(u64::MAX);

    /// Builds an instant from whole nanoseconds since simulation start.
    pub const fn from_nanos(ns: u64) -> Self {
        Time(ns)
    }

    /// Builds an instant from whole milliseconds since simulation start.
    pub const fn from_millis(ms: u64) -> Self {
        Time(ms * 1_000_000)
    }

    /// Builds an instant from whole seconds since simulation start.
    pub const fn from_secs(s: u64) -> Self {
        Time(s * 1_000_000_000)
    }

    /// Nanoseconds since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since simulation start, as a float (lossy for huge values).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Span from `earlier` to `self`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `earlier` is later than `self`.
    pub fn since(self, earlier: Time) -> Duration {
        debug_assert!(earlier.0 <= self.0, "since() called with a later instant");
        Duration(self.0.saturating_sub(earlier.0))
    }

    /// The later of two instants.
    pub fn max(self, other: Time) -> Time {
        Time(self.0.max(other.0))
    }

    /// The earlier of two instants.
    pub fn min(self, other: Time) -> Time {
        Time(self.0.min(other.0))
    }
}

impl Duration {
    /// The empty span.
    pub const ZERO: Duration = Duration(0);

    /// Builds a span from whole nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        Duration(ns)
    }

    /// Builds a span from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        Duration(us * 1_000)
    }

    /// Builds a span from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        Duration(ms * 1_000_000)
    }

    /// Builds a span from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        Duration(s * 1_000_000_000)
    }

    /// Builds a span from fractional seconds, rounding to nanoseconds.
    ///
    /// # Panics
    ///
    /// Panics if `s` is negative or not finite.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(
            s.is_finite() && s >= 0.0,
            "duration seconds must be finite and non-negative"
        );
        Duration((s * 1e9).round() as u64)
    }

    /// Whole nanoseconds in this span.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Whole milliseconds in this span (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Seconds in this span, as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// `true` when the span is empty.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// The larger of two spans.
    pub fn max(self, other: Duration) -> Duration {
        Duration(self.0.max(other.0))
    }

    /// The smaller of two spans.
    pub fn min(self, other: Duration) -> Duration {
        Duration(self.0.min(other.0))
    }

    /// Multiplies the span by a float factor, rounding to nanoseconds.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or not finite.
    pub fn mul_f64(self, factor: f64) -> Duration {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "duration factor must be finite and non-negative"
        );
        Duration((self.0 as f64 * factor).round() as u64)
    }
}

impl Add<Duration> for Time {
    type Output = Time;
    fn add(self, rhs: Duration) -> Time {
        Time(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<Duration> for Time {
    fn add_assign(&mut self, rhs: Duration) {
        *self = *self + rhs;
    }
}

impl Sub<Duration> for Time {
    type Output = Time;
    fn sub(self, rhs: Duration) -> Time {
        Time(self.0.saturating_sub(rhs.0))
    }
}

impl Sub<Time> for Time {
    type Output = Duration;
    fn sub(self, rhs: Time) -> Duration {
        self.since(rhs)
    }
}

impl Add for Duration {
    type Output = Duration;
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for Duration {
    fn add_assign(&mut self, rhs: Duration) {
        *self = *self + rhs;
    }
}

impl Sub for Duration {
    type Output = Duration;
    fn sub(self, rhs: Duration) -> Duration {
        Duration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for Duration {
    fn sub_assign(&mut self, rhs: Duration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for Duration {
    type Output = Duration;
    fn mul(self, rhs: u64) -> Duration {
        Duration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for Duration {
    type Output = Duration;
    fn div(self, rhs: u64) -> Duration {
        Duration(self.0 / rhs)
    }
}

impl Sum for Duration {
    fn sum<I: Iterator<Item = Duration>>(iter: I) -> Duration {
        iter.fold(Duration::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 < 1_000 {
            write!(f, "{}ns", self.0)
        } else if self.0 < 1_000_000 {
            write!(f, "{:.1}us", self.0 as f64 / 1e3)
        } else if self.0 < 1_000_000_000 {
            write!(f, "{:.2}ms", self.0 as f64 / 1e6)
        } else {
            write!(f, "{:.3}s", self.as_secs_f64())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_round_trips() {
        let t = Time::from_secs(3) + Duration::from_millis(500);
        assert_eq!(t.as_nanos(), 3_500_000_000);
        assert_eq!(t.since(Time::from_secs(3)), Duration::from_millis(500));
        assert_eq!(t - Time::from_secs(1), Duration::from_millis(2_500));
    }

    #[test]
    fn duration_conversions() {
        assert_eq!(Duration::from_micros(1_500).as_nanos(), 1_500_000);
        assert_eq!(Duration::from_secs_f64(0.25), Duration::from_millis(250));
        assert_eq!(Duration::from_secs(5).as_millis(), 5_000);
        assert!((Duration::from_millis(1).as_secs_f64() - 0.001).abs() < 1e-12);
    }

    #[test]
    fn duration_scaling() {
        assert_eq!(Duration::from_secs(1) * 3, Duration::from_secs(3));
        assert_eq!(Duration::from_secs(3) / 3, Duration::from_secs(1));
        assert_eq!(Duration::from_secs(2).mul_f64(0.5), Duration::from_secs(1));
    }

    #[test]
    fn saturating_behaviour() {
        assert_eq!(Time::ZERO - Duration::from_secs(1), Time::ZERO);
        assert_eq!(Duration::ZERO - Duration::from_secs(1), Duration::ZERO);
        assert_eq!(Time::MAX + Duration::from_secs(1), Time::MAX);
    }

    #[test]
    fn sum_of_durations() {
        let total: Duration = [1u64, 2, 3].iter().map(|&s| Duration::from_secs(s)).sum();
        assert_eq!(total, Duration::from_secs(6));
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(Duration::from_nanos(12).to_string(), "12ns");
        assert_eq!(Duration::from_micros(12).to_string(), "12.0us");
        assert_eq!(Duration::from_millis(12).to_string(), "12.00ms");
        assert_eq!(Duration::from_secs(12).to_string(), "12.000s");
        assert_eq!(Time::from_secs(1).to_string(), "1.000000s");
    }

    #[test]
    fn min_max_helpers() {
        assert_eq!(
            Time::from_secs(1).max(Time::from_secs(2)),
            Time::from_secs(2)
        );
        assert_eq!(
            Time::from_secs(1).min(Time::from_secs(2)),
            Time::from_secs(1)
        );
        assert_eq!(
            Duration::from_secs(1).max(Duration::from_secs(2)),
            Duration::from_secs(2)
        );
        assert_eq!(
            Duration::from_secs(1).min(Duration::from_secs(2)),
            Duration::from_secs(1)
        );
    }
}
