//! Event schedulers: the production hierarchical timing wheel and the
//! seed-style binary-heap reference.
//!
//! Both implement [`Scheduler`] and are observationally identical: events
//! pop in exact `(time, insertion sequence)` order, and a cancelled event
//! still surfaces as [`Popped::Cancelled`] at its original instant (the
//! engine advances its clock over cancelled timers, a seed behaviour the
//! determinism suite pins). The equivalence is proptested in
//! `tests/scheduler.rs` and the throughput difference is measured by the
//! `scheduler` microbench in `bench_dissemination`.
//!
//! ## The wheel
//!
//! [`TimingWheel`] buckets pending events by discrete sim time: a ring of
//! `NUM_BUCKETS` buckets of `2^BUCKET_SHIFT` ns each (≈2 ms buckets over a
//! ≈17 s horizon), with a small binary heap holding the far-future
//! overflow. Payloads live in a slab and never move; the wheel shuffles
//! 24-byte `(time, seq, slot)` stubs only, so a pop costs an append-and-
//! sort over one bucket's handful of entries instead of a sift through a
//! multi-thousand-entry heap of full-size events. Cancellation is O(1):
//! each slab slot carries a generation stamp, a cancel vacates the slot
//! and bumps the stamp, and the stale stub is recognized (and reported as
//! [`Popped::Cancelled`]) when its bucket drains.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};

use crate::time::Time;

/// log2 of the wheel bucket width in nanoseconds (≈2.1 ms).
const BUCKET_SHIFT: u32 = 21;
/// Number of ring buckets (power of two). Horizon ≈ 17.2 s: every periodic
/// protocol timer of the gossip stack lands inside it; only genuinely
/// far-future events (long drains, `Time::MAX` sentinels) hit the heap.
const NUM_BUCKETS: usize = 8192;
const BUCKET_MASK: u64 = (NUM_BUCKETS as u64) - 1;

/// Handle to a scheduled event, usable for O(1) cancellation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventId(u64);

impl EventId {
    fn wheel(slot: u32, gen: u32) -> Self {
        EventId((u64::from(gen) << 32) | u64::from(slot))
    }
    fn slot(self) -> u32 {
        self.0 as u32
    }
    fn gen(self) -> u32 {
        (self.0 >> 32) as u32
    }
    fn seq(self) -> u64 {
        self.0
    }
}

/// One scheduler pop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Popped<E> {
    /// A live event.
    Event {
        /// The instant the event was scheduled for.
        at: Time,
        /// Its global insertion sequence number.
        seq: u64,
        /// The scheduled payload.
        payload: E,
    },
    /// The ghost of a cancelled event: its slot was vacated, but its queue
    /// position still surfaces so the clock semantics match the seed
    /// engine (which popped cancelled timers and advanced time over them).
    Cancelled {
        /// The instant the cancelled event had been scheduled for.
        at: Time,
    },
}

/// Common interface of the wheel and the reference heap.
pub trait Scheduler<E> {
    /// Schedules `payload` at `at`; `at` must be monotone with respect to
    /// the pops observed so far (events are never scheduled in the past).
    fn push(&mut self, at: Time, payload: E) -> EventId;
    /// Cancels a pending event; a no-op once the event popped.
    fn cancel(&mut self, id: EventId);
    /// Pops the next entry in `(time, seq)` order (cancelled ghosts
    /// included), or `None` when the queue is empty.
    fn pop(&mut self) -> Option<Popped<E>>;
    /// The instant of the next entry (cancelled ghosts included).
    fn peek_time(&mut self) -> Option<Time>;
    /// Entries still queued, cancelled-but-unpopped ghosts included.
    fn len(&self) -> usize;
    /// Whether nothing is queued.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A 24-byte event stub: everything the wheel moves around.
#[derive(Debug, Clone, Copy)]
struct Stub {
    at_ns: u64,
    seq: u64,
    slot: u32,
    gen: u32,
}

impl Stub {
    fn key(&self) -> (u64, u64) {
        (self.at_ns, self.seq)
    }
}

/// Far-future stub with min-ordering for the overflow heap.
#[derive(Debug)]
struct FarStub(Stub);

impl PartialEq for FarStub {
    fn eq(&self, other: &Self) -> bool {
        self.0.key() == other.0.key()
    }
}
impl Eq for FarStub {}
impl PartialOrd for FarStub {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for FarStub {
    fn cmp(&self, other: &Self) -> Ordering {
        other.0.key().cmp(&self.0.key()) // inverted: BinaryHeap is a max-heap
    }
}

#[derive(Debug)]
struct Slot<E> {
    gen: u32,
    payload: Option<E>,
}

/// The production scheduler (see module docs).
#[derive(Debug)]
pub struct TimingWheel<E> {
    seq: u64,
    /// Entries queued, cancelled ghosts included.
    pending: usize,
    slab: Vec<Slot<E>>,
    /// Vacant slab slots, recycled FIFO. First-in-first-out matters: a
    /// stale `EventId` only ever aliases a live event if its slot's u32
    /// generation wraps all the way around while the id is retained, and
    /// FIFO reuse spreads the generation bumps evenly across the slab —
    /// the wrap horizon becomes `depth × 2^32` events (≥ 10^13 at any
    /// realistic queue depth) instead of `2^32` on one hot LIFO slot.
    free: VecDeque<u32>,
    buckets: Vec<Vec<Stub>>,
    /// One occupancy bit per ring bucket.
    occupied: Vec<u64>,
    /// Absolute index of the bucket currently draining through `cur`.
    cursor: u64,
    /// The draining bucket as a small min-heap on `(time, seq)`: loads
    /// are O(k), pops O(log k) over a handful of entries, and — unlike a
    /// sorted vector — a standing population of same-bucket events (a
    /// long zero-latency burst) inserts in O(log k) instead of
    /// memmove-per-push.
    cur: BinaryHeap<FarStub>,
    far: BinaryHeap<FarStub>,
}

impl<E> Default for TimingWheel<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> TimingWheel<E> {
    /// An empty wheel anchored at `Time::ZERO`.
    pub fn new() -> Self {
        TimingWheel {
            seq: 0,
            pending: 0,
            slab: Vec::with_capacity(1024),
            free: VecDeque::with_capacity(1024),
            buckets: (0..NUM_BUCKETS).map(|_| Vec::new()).collect(),
            occupied: vec![0; NUM_BUCKETS / 64],
            cursor: 0,
            cur: BinaryHeap::new(),
            far: BinaryHeap::new(),
        }
    }

    fn alloc(&mut self, payload: E) -> (u32, u32) {
        if let Some(s) = self.free.pop_front() {
            let slot = &mut self.slab[s as usize];
            debug_assert!(slot.payload.is_none());
            slot.payload = Some(payload);
            (s, slot.gen)
        } else {
            let s = self.slab.len() as u32;
            self.slab.push(Slot {
                gen: 0,
                payload: Some(payload),
            });
            (s, 0)
        }
    }

    fn insert(&mut self, stub: Stub) {
        let b = stub.at_ns >> BUCKET_SHIFT;
        if b <= self.cursor {
            // The event lands in (or before) the bucket being drained.
            // Everything already popped is strictly older (`at >= now` and
            // `seq` is the global maximum), so pushing into the current
            // min-heap keeps the pop order exact.
            self.cur.push(FarStub(stub));
        } else if b - self.cursor < NUM_BUCKETS as u64 {
            let s = (b & BUCKET_MASK) as usize;
            self.buckets[s].push(stub);
            self.occupied[s >> 6] |= 1u64 << (s & 63);
        } else {
            self.far.push(FarStub(stub));
        }
    }

    /// Ring-nearest occupied bucket strictly after the cursor, as an
    /// absolute index. All occupied buckets live in `(cursor, cursor + H)`,
    /// so the bitmap scan in ring order is also absolute order.
    fn next_occupied(&self) -> Option<u64> {
        let cursor_slot = (self.cursor & BUCKET_MASK) as usize;
        let start = (cursor_slot + 1) & (NUM_BUCKETS - 1);
        let words = self.occupied.len();
        for step in 0..=words {
            let wi = (start / 64 + step) % words;
            let mut bits = self.occupied[wi];
            if step == 0 {
                bits &= !0u64 << (start & 63);
            }
            if step == words {
                bits &= !(!0u64 << (start & 63));
            }
            if bits != 0 {
                let slot = wi * 64 + bits.trailing_zeros() as usize;
                let d = (slot + NUM_BUCKETS - cursor_slot) & (NUM_BUCKETS - 1);
                debug_assert!(d > 0);
                return Some(self.cursor + d as u64);
            }
        }
        None
    }

    /// Moves the cursor to the next non-empty bucket (near ring or far
    /// heap, whichever is earlier) and loads it into `cur`, sorted.
    /// Returns `false` when nothing is queued anywhere.
    fn advance(&mut self) -> bool {
        debug_assert!(self.cur.is_empty(), "advance over live entries");
        let near = self.next_occupied();
        let far = self.far.peek().map(|f| f.0.at_ns >> BUCKET_SHIFT);
        let target = match (near, far) {
            (None, None) => return false,
            (Some(n), None) => n,
            (None, Some(f)) => f,
            (Some(n), Some(f)) => n.min(f),
        };
        self.cursor = target;
        let s = (target & BUCKET_MASK) as usize;
        if self.occupied[s >> 6] & (1u64 << (s & 63)) != 0 {
            self.cur.extend(self.buckets[s].drain(..).map(FarStub));
            self.occupied[s >> 6] &= !(1u64 << (s & 63));
        }
        while let Some(f) = self.far.peek() {
            if f.0.at_ns >> BUCKET_SHIFT == target {
                let stub = self.far.pop().expect("peeked");
                self.cur.push(stub);
            } else {
                break;
            }
        }
        true
    }
}

impl<E> Scheduler<E> for TimingWheel<E> {
    fn push(&mut self, at: Time, payload: E) -> EventId {
        let seq = self.seq;
        self.seq += 1;
        let (slot, gen) = self.alloc(payload);
        self.insert(Stub {
            at_ns: at.as_nanos(),
            seq,
            slot,
            gen,
        });
        self.pending += 1;
        EventId::wheel(slot, gen)
    }

    fn cancel(&mut self, id: EventId) {
        let Some(slot) = self.slab.get_mut(id.slot() as usize) else {
            return;
        };
        if slot.gen != id.gen() || slot.payload.is_none() {
            return; // already fired, already cancelled, or slot reused
        }
        slot.payload = None;
        slot.gen = slot.gen.wrapping_add(1);
        self.free.push_back(id.slot());
        // The stub stays queued and will pop as `Cancelled`.
    }

    fn pop(&mut self) -> Option<Popped<E>> {
        loop {
            if let Some(FarStub(stub)) = self.cur.pop() {
                self.pending -= 1;
                let at = Time::from_nanos(stub.at_ns);
                let slot = &mut self.slab[stub.slot as usize];
                if slot.gen == stub.gen {
                    let payload = slot.payload.take().expect("live slot holds a payload");
                    slot.gen = slot.gen.wrapping_add(1);
                    self.free.push_back(stub.slot);
                    return Some(Popped::Event {
                        at,
                        seq: stub.seq,
                        payload,
                    });
                }
                return Some(Popped::Cancelled { at });
            }
            if self.pending == 0 {
                return None;
            }
            if !self.advance() {
                debug_assert!(false, "pending entries but no occupied bucket");
                return None;
            }
        }
    }

    fn peek_time(&mut self) -> Option<Time> {
        loop {
            if let Some(FarStub(stub)) = self.cur.peek() {
                return Some(Time::from_nanos(stub.at_ns));
            }
            if self.pending == 0 {
                return None;
            }
            if !self.advance() {
                return None;
            }
        }
    }

    fn len(&self) -> usize {
        self.pending
    }
}

/// Cancelled-event tracking as a growable bitset (the seed engine's
/// `CancelSet`, preserved for the reference scheduler): sequence numbers
/// are dense, so one bit per event replaces a hash lookup, and the common
/// nothing-cancelled case is a single integer compare.
#[derive(Debug, Default)]
struct CancelSet {
    words: Vec<u64>,
    live: usize,
}

impl CancelSet {
    fn insert(&mut self, id: u64) {
        let word = (id / 64) as usize;
        if self.words.len() <= word {
            self.words.resize(word + 1, 0);
        }
        let bit = 1u64 << (id % 64);
        if self.words[word] & bit == 0 {
            self.words[word] |= bit;
            self.live += 1;
        }
    }

    fn remove(&mut self, id: u64) -> bool {
        if self.live == 0 {
            return false;
        }
        let word = (id / 64) as usize;
        let Some(slot) = self.words.get_mut(word) else {
            return false;
        };
        let bit = 1u64 << (id % 64);
        if *slot & bit != 0 {
            *slot &= !bit;
            self.live -= 1;
            true
        } else {
            false
        }
    }
}

/// Full-size heap entry of the reference scheduler: payload inline, as the
/// seed engine stored it.
#[derive(Debug)]
struct HeapEntry<E> {
    at_ns: u64,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for HeapEntry<E> {
    fn eq(&self, other: &Self) -> bool {
        (self.at_ns, self.seq) == (other.at_ns, other.seq)
    }
}
impl<E> Eq for HeapEntry<E> {}
impl<E> PartialOrd for HeapEntry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for HeapEntry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        (other.at_ns, other.seq).cmp(&(self.at_ns, self.seq)) // min-order
    }
}

/// The seed engine's scheduler, kept as the reference implementation for
/// the equivalence proptest and the `scheduler` microbench: one global
/// `BinaryHeap` of full-size entries plus a cancel bitset consulted at pop.
#[derive(Debug)]
pub struct HeapScheduler<E> {
    seq: u64,
    heap: BinaryHeap<HeapEntry<E>>,
    cancelled: CancelSet,
}

impl<E> Default for HeapScheduler<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> HeapScheduler<E> {
    /// An empty reference scheduler.
    pub fn new() -> Self {
        HeapScheduler {
            seq: 0,
            heap: BinaryHeap::with_capacity(4096),
            cancelled: CancelSet::default(),
        }
    }
}

impl<E> Scheduler<E> for HeapScheduler<E> {
    fn push(&mut self, at: Time, payload: E) -> EventId {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(HeapEntry {
            at_ns: at.as_nanos(),
            seq,
            payload,
        });
        EventId(seq)
    }

    fn cancel(&mut self, id: EventId) {
        self.cancelled.insert(id.seq());
    }

    fn pop(&mut self) -> Option<Popped<E>> {
        let entry = self.heap.pop()?;
        let at = Time::from_nanos(entry.at_ns);
        if self.cancelled.remove(entry.seq) {
            return Some(Popped::Cancelled { at });
        }
        Some(Popped::Event {
            at,
            seq: entry.seq,
            payload: entry.payload,
        })
    }

    fn peek_time(&mut self) -> Option<Time> {
        self.heap.peek().map(|e| Time::from_nanos(e.at_ns))
    }

    fn len(&self) -> usize {
        self.heap.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Duration;

    fn t(ms: u64) -> Time {
        Time::ZERO + Duration::from_millis(ms)
    }

    fn drain<E: Copy + std::fmt::Debug, S: Scheduler<E>>(s: &mut S) -> Vec<Popped<E>> {
        let mut out = Vec::new();
        while let Some(p) = s.pop() {
            out.push(p);
        }
        out
    }

    #[test]
    fn wheel_pops_in_time_then_seq_order() {
        let mut w = TimingWheel::new();
        w.push(t(5), "b");
        w.push(t(1), "a");
        w.push(t(5), "c");
        let popped = drain(&mut w);
        let tags: Vec<_> = popped
            .iter()
            .map(|p| match p {
                Popped::Event { payload, .. } => *payload,
                Popped::Cancelled { .. } => "!",
            })
            .collect();
        assert_eq!(tags, vec!["a", "b", "c"]);
    }

    #[test]
    fn same_bucket_entries_respect_sub_bucket_times() {
        // Entries 100 ns apart land in the same 2 ms bucket and must still
        // pop in exact time order.
        let mut w = TimingWheel::new();
        for i in (0..50u64).rev() {
            w.push(Time::from_nanos(1000 + i * 100), i);
        }
        let popped = drain(&mut w);
        let vals: Vec<u64> = popped
            .iter()
            .map(|p| match p {
                Popped::Event { payload, .. } => *payload,
                Popped::Cancelled { .. } => unreachable!(),
            })
            .collect();
        assert_eq!(vals, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn far_future_events_cross_the_horizon_correctly() {
        let mut w = TimingWheel::new();
        w.push(Time::from_secs(120), "far"); // beyond the ≈17 s horizon
        w.push(t(1), "near");
        w.push(Time::from_secs(119), "far-but-earlier");
        assert_eq!(w.len(), 3);
        let order: Vec<_> = drain(&mut w)
            .iter()
            .map(|p| match p {
                Popped::Event { payload, .. } => *payload,
                Popped::Cancelled { .. } => "!",
            })
            .collect();
        assert_eq!(order, vec!["near", "far-but-earlier", "far"]);
    }

    #[test]
    fn cancel_yields_a_ghost_and_slot_reuse_is_safe() {
        let mut w = TimingWheel::new();
        let id = w.push(t(2), 1u32);
        w.push(t(1), 2u32);
        w.cancel(id);
        // The freed slot is immediately reused by a new event.
        w.push(t(3), 3u32);
        let popped = drain(&mut w);
        assert_eq!(
            popped,
            vec![
                Popped::Event {
                    at: t(1),
                    seq: 1,
                    payload: 2
                },
                Popped::Cancelled { at: t(2) },
                Popped::Event {
                    at: t(3),
                    seq: 2,
                    payload: 3
                },
            ]
        );
        // Cancelling a long-gone id is a no-op (generation mismatch).
        w.cancel(id);
        assert!(w.pop().is_none());
    }

    #[test]
    fn inserts_into_the_draining_bucket_interleave_exactly() {
        let mut w = TimingWheel::new();
        w.push(Time::from_nanos(100), "first");
        w.push(Time::from_nanos(300), "third");
        assert!(matches!(
            w.pop(),
            Some(Popped::Event {
                payload: "first",
                ..
            })
        ));
        // Same bucket, between the popped and the pending entry.
        w.push(Time::from_nanos(200), "second");
        assert!(matches!(
            w.pop(),
            Some(Popped::Event {
                payload: "second",
                ..
            })
        ));
        assert!(matches!(
            w.pop(),
            Some(Popped::Event {
                payload: "third",
                ..
            })
        ));
    }

    #[test]
    fn peek_advances_lazily_but_does_not_consume() {
        let mut w = TimingWheel::new();
        w.push(Time::from_secs(5), "x");
        assert_eq!(w.peek_time(), Some(Time::from_secs(5)));
        assert_eq!(w.peek_time(), Some(Time::from_secs(5)));
        assert!(matches!(w.pop(), Some(Popped::Event { .. })));
        assert_eq!(w.peek_time(), None);
    }

    #[test]
    fn heap_reference_matches_wheel_on_a_small_script() {
        let mut w: TimingWheel<u32> = TimingWheel::new();
        let mut h: HeapScheduler<u32> = HeapScheduler::new();
        let mut ids = Vec::new();
        for (ms, v) in [(4u64, 1u32), (1, 2), (9, 3), (4, 4), (30_000, 5)] {
            ids.push((w.push(t(ms), v), h.push(t(ms), v)));
        }
        w.cancel(ids[2].0);
        h.cancel(ids[2].1);
        assert_eq!(drain(&mut w), drain(&mut h));
    }

    #[test]
    fn time_max_sentinel_is_schedulable() {
        let mut w = TimingWheel::new();
        w.push(Time::MAX, "eventually");
        w.push(t(1), "now");
        assert_eq!(w.peek_time(), Some(t(1)));
        assert_eq!(drain(&mut w).len(), 2);
    }
}
