//! Byte and message accounting for the simulated network.
//!
//! Every message the engine transmits is recorded here: bytes sent are
//! attributed to the sender at departure time, bytes received to the receiver
//! at delivery time, both bucketed over fixed-width time windows (the paper
//! aggregates bandwidth over 10-second intervals). Message counts are also
//! tallied per message *kind* so experiments can separate block payloads from
//! digests, pull chatter and background traffic.
//!
//! Per-kind tallies are indexed by interned [`KindId`]s — a dense array add
//! on the hot path instead of the seed's per-record
//! `BTreeMap<&'static str, KindStats>` walk; the string-keyed views
//! ([`NetMetrics::kind`], [`NetMetrics::kinds`]) resolve names at read time
//! and stay byte-compatible with the old reports.

use crate::kind::KindId;
use crate::net::NodeId;
use crate::time::{Duration, Time};

/// Per-node, per-bucket byte counters plus per-kind message tallies.
#[derive(Debug, Clone)]
pub struct NetMetrics {
    bucket: Duration,
    /// Cached window of the last bucket index computed, so consecutive
    /// records inside one window (the overwhelmingly common case with
    /// 10-second buckets) skip the integer division.
    cached_idx: usize,
    cached_start_ns: u64,
    cached_end_ns: u64,
    sent: Vec<Vec<u64>>,
    received: Vec<Vec<u64>>,
    /// Dense per-kind tallies, indexed by `KindId`.
    kinds: Vec<KindStats>,
    dropped_loss: u64,
    dropped_down: u64,
    dropped_partition: u64,
}

/// Count and byte volume for one message kind.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KindStats {
    /// Number of messages sent of this kind.
    pub count: u64,
    /// Total bytes sent of this kind.
    pub bytes: u64,
}

impl NetMetrics {
    /// Creates a collector for `nodes` nodes with the given bucket width.
    ///
    /// # Panics
    ///
    /// Panics if `bucket` is zero.
    pub fn new(nodes: usize, bucket: Duration) -> Self {
        assert!(!bucket.is_zero(), "metrics bucket width must be positive");
        NetMetrics {
            bucket,
            cached_idx: 0,
            cached_start_ns: 0,
            cached_end_ns: bucket.as_nanos(),
            sent: vec![Vec::new(); nodes],
            received: vec![Vec::new(); nodes],
            kinds: Vec::new(),
            dropped_loss: 0,
            dropped_down: 0,
            dropped_partition: 0,
        }
    }

    /// The bucket width used for the time series.
    pub fn bucket_width(&self) -> Duration {
        self.bucket
    }

    fn bucket_index(&mut self, at: Time) -> usize {
        let ns = at.as_nanos();
        if ns >= self.cached_start_ns && ns < self.cached_end_ns {
            return self.cached_idx;
        }
        let width = self.bucket.as_nanos();
        let idx = ns / width;
        self.cached_idx = idx as usize;
        self.cached_start_ns = idx * width;
        self.cached_end_ns = self.cached_start_ns.saturating_add(width);
        self.cached_idx
    }

    /// Read-only bucket index (no cache update), for report queries.
    fn bucket_index_ro(&self, at: Time) -> usize {
        (at.as_nanos() / self.bucket.as_nanos()) as usize
    }

    fn add(series: &mut Vec<u64>, idx: usize, bytes: u64) {
        if series.len() <= idx {
            series.resize(idx + 1, 0);
        }
        series[idx] += bytes;
    }

    /// Records a sent message (called by the engine at departure time).
    pub fn record_sent(&mut self, from: NodeId, at: Time, bytes: usize, kind: KindId) {
        let idx = self.bucket_index(at);
        Self::add(&mut self.sent[from.index()], idx, bytes as u64);
        let k = kind.index();
        if self.kinds.len() <= k {
            self.kinds.resize(k + 1, KindStats::default());
        }
        let entry = &mut self.kinds[k];
        entry.count += 1;
        entry.bytes += bytes as u64;
    }

    /// Records a received message (called by the engine at delivery time).
    pub fn record_received(&mut self, to: NodeId, at: Time, bytes: usize) {
        let idx = self.bucket_index(at);
        Self::add(&mut self.received[to.index()], idx, bytes as u64);
    }

    /// Records a message lost to random packet loss.
    pub fn record_loss(&mut self) {
        self.dropped_loss += 1;
    }

    /// Records a message dropped because an endpoint was down.
    pub fn record_drop_down(&mut self) {
        self.dropped_down += 1;
    }

    /// Records a message dropped by a partitioned link.
    pub fn record_drop_partition(&mut self) {
        self.dropped_partition += 1;
    }

    /// Messages lost to random packet loss so far.
    pub fn losses(&self) -> u64 {
        self.dropped_loss
    }

    /// Messages dropped because an endpoint was down.
    pub fn drops_down(&self) -> u64 {
        self.dropped_down
    }

    /// Messages dropped on partitioned links.
    pub fn drops_partition(&self) -> u64 {
        self.dropped_partition
    }

    /// Raw per-bucket bytes sent by `node`.
    pub fn sent_series(&self, node: NodeId) -> &[u64] {
        &self.sent[node.index()]
    }

    /// Raw per-bucket bytes received by `node`.
    pub fn received_series(&self, node: NodeId) -> &[u64] {
        &self.received[node.index()]
    }

    /// Total bytes sent by `node`.
    pub fn total_sent(&self, node: NodeId) -> u64 {
        self.sent[node.index()].iter().sum()
    }

    /// Total bytes received by `node`.
    pub fn total_received(&self, node: NodeId) -> u64 {
        self.received[node.index()].iter().sum()
    }

    /// Total bytes sent across all nodes.
    pub fn network_total_sent(&self) -> u64 {
        (0..self.sent.len())
            .map(|i| self.total_sent(NodeId(i as u32)))
            .sum()
    }

    /// Per-kind statistics, ordered by kind name (interning order never
    /// leaks into reports).
    pub fn kinds(&self) -> impl Iterator<Item = (&'static str, KindStats)> + '_ {
        let mut rows: Vec<(&'static str, KindStats)> = self
            .kinds
            .iter()
            .enumerate()
            .filter(|(_, s)| s.count > 0)
            .map(|(i, s)| (KindId::from_index(i).name(), *s))
            .collect();
        rows.sort_unstable_by_key(|(name, _)| *name);
        rows.into_iter()
    }

    /// Statistics for a single kind addressed by interned id.
    pub fn kind_stats(&self, kind: KindId) -> KindStats {
        self.kinds.get(kind.index()).copied().unwrap_or_default()
    }

    /// Statistics for a single kind, if any message of that kind was sent.
    pub fn kind(&self, kind: &str) -> Option<KindStats> {
        let id = KindId::lookup(kind)?;
        let stats = self.kind_stats(id);
        (stats.count > 0).then_some(stats)
    }

    /// Bandwidth series for `node` in MB/s per bucket, summing sent and
    /// received bytes as the paper's per-peer "network utilization" does.
    /// The series is padded with zeros up to `until`.
    pub fn utilization_mbps(&self, node: NodeId, until: Time) -> Vec<f64> {
        let buckets = self.bucket_index_ro(until) + 1;
        let secs = self.bucket.as_secs_f64();
        let sent = &self.sent[node.index()];
        let recv = &self.received[node.index()];
        (0..buckets)
            .map(|i| {
                let s = sent.get(i).copied().unwrap_or(0);
                let r = recv.get(i).copied().unwrap_or(0);
                (s + r) as f64 / 1e6 / secs
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(name: &'static str) -> KindId {
        KindId::intern(name)
    }

    #[test]
    fn buckets_accumulate_by_time_window() {
        let mut m = NetMetrics::new(2, Duration::from_secs(10));
        let n = NodeId(0);
        m.record_sent(n, Time::from_secs(1), 100, k("block"));
        m.record_sent(n, Time::from_secs(9), 50, k("block"));
        m.record_sent(n, Time::from_secs(10), 25, k("digest"));
        assert_eq!(m.sent_series(n), &[150, 25]);
        assert_eq!(m.total_sent(n), 175);
    }

    #[test]
    fn bucket_cache_survives_out_of_order_timestamps() {
        let mut m = NetMetrics::new(1, Duration::from_secs(10));
        let n = NodeId(0);
        // Forward past the cached window, then back into an earlier one —
        // the index must stay exact either way.
        m.record_sent(n, Time::from_secs(5), 1, k("block"));
        m.record_sent(n, Time::from_secs(25), 2, k("block"));
        m.record_sent(n, Time::from_secs(7), 4, k("block"));
        m.record_received(n, Time::from_secs(15), 8);
        assert_eq!(m.sent_series(n), &[5, 0, 2]);
        assert_eq!(m.received_series(n), &[0, 8]);
    }

    #[test]
    fn kind_stats_tally_count_and_bytes() {
        let mut m = NetMetrics::new(1, Duration::from_secs(1));
        let n = NodeId(0);
        m.record_sent(n, Time::ZERO, 10, k("block"));
        m.record_sent(n, Time::ZERO, 30, k("block"));
        m.record_sent(n, Time::ZERO, 5, k("digest"));
        assert_eq!(
            m.kind("block"),
            Some(KindStats {
                count: 2,
                bytes: 40
            })
        );
        assert_eq!(m.kind("digest"), Some(KindStats { count: 1, bytes: 5 }));
        assert_eq!(m.kind("pull-never-sent-here"), None);
        let kinds: Vec<_> = m.kinds().map(|(k, _)| k).collect();
        assert_eq!(kinds, vec!["block", "digest"]);
        assert_eq!(m.kind_stats(k("block")).bytes, 40);
        assert_eq!(m.kind_stats(k("pull-never-sent-here")).count, 0);
    }

    #[test]
    fn utilization_combines_directions_and_pads() {
        let mut m = NetMetrics::new(2, Duration::from_secs(10));
        let n = NodeId(1);
        m.record_sent(n, Time::from_secs(5), 10_000_000, k("block"));
        m.record_received(n, Time::from_secs(5), 10_000_000);
        let series = m.utilization_mbps(n, Time::from_secs(35));
        assert_eq!(series.len(), 4);
        assert!((series[0] - 2.0).abs() < 1e-9); // 20 MB over 10 s
        assert_eq!(series[1], 0.0);
    }

    #[test]
    fn drop_counters_are_independent() {
        let mut m = NetMetrics::new(1, Duration::from_secs(1));
        m.record_loss();
        m.record_loss();
        m.record_drop_down();
        m.record_drop_partition();
        assert_eq!(m.losses(), 2);
        assert_eq!(m.drops_down(), 1);
        assert_eq!(m.drops_partition(), 1);
    }

    #[test]
    fn network_total_sums_all_nodes() {
        let mut m = NetMetrics::new(3, Duration::from_secs(1));
        m.record_sent(NodeId(0), Time::ZERO, 1, k("x"));
        m.record_sent(NodeId(1), Time::ZERO, 2, k("x"));
        m.record_sent(NodeId(2), Time::ZERO, 3, k("x"));
        assert_eq!(m.network_total_sent(), 6);
    }
}
