//! Byte and message accounting for the simulated network.
//!
//! Every message the engine transmits is recorded here: bytes sent are
//! attributed to the sender at departure time, bytes received to the receiver
//! at delivery time, both bucketed over fixed-width time windows (the paper
//! aggregates bandwidth over 10-second intervals). Message counts are also
//! tallied per message *kind* so experiments can separate block payloads from
//! digests, pull chatter and background traffic.

use std::collections::BTreeMap;

use crate::net::NodeId;
use crate::time::{Duration, Time};

/// Per-node, per-bucket byte counters plus per-kind message tallies.
#[derive(Debug, Clone)]
pub struct NetMetrics {
    bucket: Duration,
    sent: Vec<Vec<u64>>,
    received: Vec<Vec<u64>>,
    kinds: BTreeMap<&'static str, KindStats>,
    dropped_loss: u64,
    dropped_down: u64,
    dropped_partition: u64,
}

/// Count and byte volume for one message kind.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KindStats {
    /// Number of messages sent of this kind.
    pub count: u64,
    /// Total bytes sent of this kind.
    pub bytes: u64,
}

impl NetMetrics {
    /// Creates a collector for `nodes` nodes with the given bucket width.
    ///
    /// # Panics
    ///
    /// Panics if `bucket` is zero.
    pub fn new(nodes: usize, bucket: Duration) -> Self {
        assert!(!bucket.is_zero(), "metrics bucket width must be positive");
        NetMetrics {
            bucket,
            sent: vec![Vec::new(); nodes],
            received: vec![Vec::new(); nodes],
            kinds: BTreeMap::new(),
            dropped_loss: 0,
            dropped_down: 0,
            dropped_partition: 0,
        }
    }

    /// The bucket width used for the time series.
    pub fn bucket_width(&self) -> Duration {
        self.bucket
    }

    fn bucket_index(&self, at: Time) -> usize {
        (at.as_nanos() / self.bucket.as_nanos()) as usize
    }

    fn add(series: &mut Vec<u64>, idx: usize, bytes: u64) {
        if series.len() <= idx {
            series.resize(idx + 1, 0);
        }
        series[idx] += bytes;
    }

    /// Records a sent message (called by the engine at departure time).
    pub fn record_sent(&mut self, from: NodeId, at: Time, bytes: usize, kind: &'static str) {
        let idx = self.bucket_index(at);
        Self::add(&mut self.sent[from.index()], idx, bytes as u64);
        let entry = self.kinds.entry(kind).or_default();
        entry.count += 1;
        entry.bytes += bytes as u64;
    }

    /// Records a received message (called by the engine at delivery time).
    pub fn record_received(&mut self, to: NodeId, at: Time, bytes: usize) {
        let idx = self.bucket_index(at);
        Self::add(&mut self.received[to.index()], idx, bytes as u64);
    }

    /// Records a message lost to random packet loss.
    pub fn record_loss(&mut self) {
        self.dropped_loss += 1;
    }

    /// Records a message dropped because an endpoint was down.
    pub fn record_drop_down(&mut self) {
        self.dropped_down += 1;
    }

    /// Records a message dropped by a partitioned link.
    pub fn record_drop_partition(&mut self) {
        self.dropped_partition += 1;
    }

    /// Messages lost to random packet loss so far.
    pub fn losses(&self) -> u64 {
        self.dropped_loss
    }

    /// Messages dropped because an endpoint was down.
    pub fn drops_down(&self) -> u64 {
        self.dropped_down
    }

    /// Messages dropped on partitioned links.
    pub fn drops_partition(&self) -> u64 {
        self.dropped_partition
    }

    /// Raw per-bucket bytes sent by `node`.
    pub fn sent_series(&self, node: NodeId) -> &[u64] {
        &self.sent[node.index()]
    }

    /// Raw per-bucket bytes received by `node`.
    pub fn received_series(&self, node: NodeId) -> &[u64] {
        &self.received[node.index()]
    }

    /// Total bytes sent by `node`.
    pub fn total_sent(&self, node: NodeId) -> u64 {
        self.sent[node.index()].iter().sum()
    }

    /// Total bytes received by `node`.
    pub fn total_received(&self, node: NodeId) -> u64 {
        self.received[node.index()].iter().sum()
    }

    /// Total bytes sent across all nodes.
    pub fn network_total_sent(&self) -> u64 {
        (0..self.sent.len())
            .map(|i| self.total_sent(NodeId(i as u32)))
            .sum()
    }

    /// Per-kind statistics, ordered by kind name.
    pub fn kinds(&self) -> impl Iterator<Item = (&'static str, KindStats)> + '_ {
        self.kinds.iter().map(|(k, v)| (*k, *v))
    }

    /// Statistics for a single kind, if any message of that kind was sent.
    pub fn kind(&self, kind: &str) -> Option<KindStats> {
        self.kinds.get(kind).copied()
    }

    /// Bandwidth series for `node` in MB/s per bucket, summing sent and
    /// received bytes as the paper's per-peer "network utilization" does.
    /// The series is padded with zeros up to `until`.
    pub fn utilization_mbps(&self, node: NodeId, until: Time) -> Vec<f64> {
        let buckets = self.bucket_index(until) + 1;
        let secs = self.bucket.as_secs_f64();
        let sent = &self.sent[node.index()];
        let recv = &self.received[node.index()];
        (0..buckets)
            .map(|i| {
                let s = sent.get(i).copied().unwrap_or(0);
                let r = recv.get(i).copied().unwrap_or(0);
                (s + r) as f64 / 1e6 / secs
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_accumulate_by_time_window() {
        let mut m = NetMetrics::new(2, Duration::from_secs(10));
        let n = NodeId(0);
        m.record_sent(n, Time::from_secs(1), 100, "block");
        m.record_sent(n, Time::from_secs(9), 50, "block");
        m.record_sent(n, Time::from_secs(10), 25, "digest");
        assert_eq!(m.sent_series(n), &[150, 25]);
        assert_eq!(m.total_sent(n), 175);
    }

    #[test]
    fn kind_stats_tally_count_and_bytes() {
        let mut m = NetMetrics::new(1, Duration::from_secs(1));
        let n = NodeId(0);
        m.record_sent(n, Time::ZERO, 10, "block");
        m.record_sent(n, Time::ZERO, 30, "block");
        m.record_sent(n, Time::ZERO, 5, "digest");
        assert_eq!(
            m.kind("block"),
            Some(KindStats {
                count: 2,
                bytes: 40
            })
        );
        assert_eq!(m.kind("digest"), Some(KindStats { count: 1, bytes: 5 }));
        assert_eq!(m.kind("pull"), None);
        let kinds: Vec<_> = m.kinds().map(|(k, _)| k).collect();
        assert_eq!(kinds, vec!["block", "digest"]);
    }

    #[test]
    fn utilization_combines_directions_and_pads() {
        let mut m = NetMetrics::new(2, Duration::from_secs(10));
        let n = NodeId(1);
        m.record_sent(n, Time::from_secs(5), 10_000_000, "block");
        m.record_received(n, Time::from_secs(5), 10_000_000);
        let series = m.utilization_mbps(n, Time::from_secs(35));
        assert_eq!(series.len(), 4);
        assert!((series[0] - 2.0).abs() < 1e-9); // 20 MB over 10 s
        assert_eq!(series[1], 0.0);
    }

    #[test]
    fn drop_counters_are_independent() {
        let mut m = NetMetrics::new(1, Duration::from_secs(1));
        m.record_loss();
        m.record_loss();
        m.record_drop_down();
        m.record_drop_partition();
        assert_eq!(m.losses(), 2);
        assert_eq!(m.drops_down(), 1);
        assert_eq!(m.drops_partition(), 1);
    }

    #[test]
    fn network_total_sums_all_nodes() {
        let mut m = NetMetrics::new(3, Duration::from_secs(1));
        m.record_sent(NodeId(0), Time::ZERO, 1, "x");
        m.record_sent(NodeId(1), Time::ZERO, 2, "x");
        m.record_sent(NodeId(2), Time::ZERO, 3, "x");
        assert_eq!(m.network_total_sent(), 6);
    }
}
