//! Network model: nodes, links, latency distributions and bandwidth queues.
//!
//! The model is deliberately simple but captures the two effects that matter
//! for gossip fidelity:
//!
//! * **egress serialization** — a node with a finite-bandwidth NIC sends
//!   messages one after another, so a peer pushing a 160 KB block to four
//!   neighbours pays four serialization delays back to back (this is the
//!   leader-peer contention the paper's `f_leader_out = 1` removes);
//! * **receiver processing** — every delivered message occupies the receiver
//!   for a sampled processing delay, and the application can additionally
//!   occupy a node (e.g. block validation at 50 ms per transaction), delaying
//!   subsequent deliveries.

use rand::rngs::StdRng;
use rand::RngExt;
use serde::{Deserialize, Serialize};

use crate::time::{Duration, Time};

/// Identifier of a simulated node (peer, orderer, client, ...).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The index of this node, for direct vector addressing.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A one-way link latency distribution.
///
/// All variants are sampled with the simulation's deterministic RNG, so a
/// given seed always produces the same latencies.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum LatencyModel {
    /// Fixed latency for every message.
    Constant(Duration),
    /// Uniformly distributed latency in `[min, max]`.
    Uniform {
        /// Lower bound (inclusive).
        min: Duration,
        /// Upper bound (inclusive).
        max: Duration,
    },
    /// LAN-like latency: `base` plus exponential jitter with mean `jitter`,
    /// with probability `spike_prob` multiplied by `spike_mult` (models GC
    /// pauses, CPU scheduling hiccups and switch queueing on a busy cluster).
    Lan {
        /// Floor latency of the link.
        base: Duration,
        /// Mean of the exponential jitter added to `base`.
        jitter: Duration,
        /// Probability that a message hits a slow path.
        spike_prob: f64,
        /// Multiplier applied to the sampled latency on the slow path.
        spike_mult: u32,
    },
}

impl LatencyModel {
    /// No latency at all; useful for logic-only unit tests.
    pub const ZERO: LatencyModel = LatencyModel::Constant(Duration::ZERO);

    /// Draws one latency sample.
    #[inline]
    pub fn sample(&self, rng: &mut StdRng) -> Duration {
        match *self {
            LatencyModel::Constant(d) => d,
            LatencyModel::Uniform { min, max } => {
                if max <= min {
                    min
                } else {
                    Duration::from_nanos(rng.random_range(min.as_nanos()..=max.as_nanos()))
                }
            }
            LatencyModel::Lan {
                base,
                jitter,
                spike_prob,
                spike_mult,
            } => {
                let u: f64 = rng.random::<f64>().max(1e-12);
                let exp = jitter.mul_f64(-u.ln());
                let mut d = base + exp;
                if spike_prob > 0.0 && rng.random::<f64>() < spike_prob {
                    d = d * u64::from(spike_mult.max(1));
                }
                d
            }
        }
    }

    /// Fills `out` with latency samples, drawing from `rng` in exactly the
    /// per-sample order of [`LatencyModel::sample`]: the `k`-th filled slot
    /// equals the `k`-th scalar `sample` call on the same generator state.
    /// That equivalence is what lets [`SampleStream`] refill its buffer in
    /// batches without perturbing the stream's draw positions — it is pinned
    /// by a test below and must survive any future model change.
    ///
    /// The win over the scalar loop is locality: one dispatch on the model
    /// for the whole batch, a tight RNG pass, and a separate arithmetic pass
    /// so the `-u.ln()` calls pipeline back to back instead of interleaving
    /// with engine bookkeeping.
    pub fn fill(&self, rng: &mut StdRng, out: &mut [Duration]) {
        match *self {
            LatencyModel::Constant(d) => out.fill(d),
            LatencyModel::Uniform { min, max } => {
                if max <= min {
                    out.fill(min);
                } else {
                    let (lo, hi) = (min.as_nanos(), max.as_nanos());
                    for slot in out.iter_mut() {
                        *slot = Duration::from_nanos(rng.random_range(lo..=hi));
                    }
                }
            }
            LatencyModel::Lan {
                base,
                jitter,
                spike_prob,
                spike_mult,
            } => {
                const CHUNK: usize = 64;
                let mut us = [0.0f64; CHUNK];
                let mut spiked = [false; CHUNK];
                let mult = u64::from(spike_mult.max(1));
                for block in out.chunks_mut(CHUNK) {
                    // Pass 1: raw draws, in the scalar order (uniform, then
                    // the spike draw of the same sample).
                    for i in 0..block.len() {
                        us[i] = rng.random::<f64>().max(1e-12);
                        spiked[i] = spike_prob > 0.0 && rng.random::<f64>() < spike_prob;
                    }
                    // Pass 2: the ln-heavy arithmetic, branch-light.
                    for (i, slot) in block.iter_mut().enumerate() {
                        let mut d = base + jitter.mul_f64(-us[i].ln());
                        if spiked[i] {
                            d = d * mult;
                        }
                        *slot = d;
                    }
                }
            }
        }
    }

    /// The mean of the distribution (spikes included).
    pub fn mean(&self) -> Duration {
        match *self {
            LatencyModel::Constant(d) => d,
            LatencyModel::Uniform { min, max } => (min + max) / 2,
            LatencyModel::Lan {
                base,
                jitter,
                spike_prob,
                spike_mult,
            } => {
                let plain = base + jitter;
                let spiked = plain * u64::from(spike_mult.max(1));
                Duration::from_nanos(
                    (plain.as_nanos() as f64 * (1.0 - spike_prob)
                        + spiked.as_nanos() as f64 * spike_prob) as u64,
                )
            }
        }
    }
}

/// A dedicated, batch-refilled stream of latency samples.
///
/// Owns its own generator, so its draw positions are independent of every
/// other stream in the simulation: the `k`-th [`SampleStream::next_sample`]
/// equals the `k`-th [`LatencyModel::sample`] on a fresh `StdRng` with the
/// same seed, regardless of what the rest of the engine draws in between.
/// This position-pinning is the heart of the engine's stream-mode
/// determinism contract (see [`crate::RngMode`]); buffered refills via
/// [`LatencyModel::fill`] amortize dispatch and keep the `ln`-heavy
/// exponential sampling in a tight loop.
#[derive(Debug, Clone)]
pub struct SampleStream {
    model: LatencyModel,
    rng: StdRng,
    buf: Vec<Duration>,
    pos: usize,
}

impl SampleStream {
    /// Samples precomputed per refill. Large enough to amortize dispatch,
    /// small enough that an aborted run wastes nothing measurable.
    pub const BATCH: usize = 1024;

    /// A stream over `model`, seeded independently of every other stream.
    pub fn new(model: LatencyModel, seed: u64) -> Self {
        use rand::SeedableRng;
        SampleStream {
            model,
            rng: StdRng::seed_from_u64(seed),
            buf: Vec::new(),
            pos: 0,
        }
    }

    /// The next sample on this stream.
    #[inline]
    pub fn next_sample(&mut self) -> Duration {
        // Constant models never touch the generator — matching the scalar
        // path, which draws nothing for them either.
        if let LatencyModel::Constant(d) = self.model {
            return d;
        }
        if self.pos == self.buf.len() {
            self.refill();
        }
        let d = self.buf[self.pos];
        self.pos += 1;
        d
    }

    #[cold]
    fn refill(&mut self) {
        if self.buf.is_empty() {
            self.buf = vec![Duration::ZERO; Self::BATCH];
        }
        let model = self.model;
        model.fill(&mut self.rng, &mut self.buf);
        self.pos = 0;
    }
}

/// A dedicated, batch-refilled stream of loss draws.
///
/// The `i`-th [`LossStream::hit`] consumes the `i`-th uniform draw of the
/// stream's own generator; like [`SampleStream`], its positions are
/// independent of every other stream. The engine only consults it when the
/// configured loss probability is positive, so the stream position is
/// "the `i`-th send of a lossy network" — documented as part of the
/// stream-mode determinism contract.
#[derive(Debug, Clone)]
pub struct LossStream {
    rng: StdRng,
    buf: Vec<f64>,
    pos: usize,
}

impl LossStream {
    /// A loss stream seeded independently of every other stream.
    pub fn new(seed: u64) -> Self {
        use rand::SeedableRng;
        LossStream {
            rng: StdRng::seed_from_u64(seed),
            buf: Vec::new(),
            pos: 0,
        }
    }

    /// `true` when the next draw falls under `p` (the message is lost).
    #[inline]
    pub fn hit(&mut self, p: f64) -> bool {
        if self.pos == self.buf.len() {
            self.refill();
        }
        let u = self.buf[self.pos];
        self.pos += 1;
        u < p
    }

    #[cold]
    fn refill(&mut self) {
        if self.buf.is_empty() {
            self.buf = vec![0.0; SampleStream::BATCH];
        }
        for slot in self.buf.iter_mut() {
            *slot = self.rng.random::<f64>();
        }
        self.pos = 0;
    }
}

/// Static description of the simulated network.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NetworkConfig {
    /// Number of nodes; ids are `0..nodes`.
    pub nodes: usize,
    /// Link latency model applied to every (from, to) pair.
    pub latency: LatencyModel,
    /// Egress NIC capacity in bits per second; `None` means infinite.
    pub egress_bandwidth_bps: Option<u64>,
    /// Per-message processing delay paid at the receiver before delivery.
    pub proc_delay: LatencyModel,
    /// Independent loss probability per message, in `[0, 1]`.
    pub loss: f64,
    /// Width of the byte-accounting buckets used by the metrics collector.
    pub metrics_bucket: Duration,
}

impl NetworkConfig {
    /// A perfect network: zero latency, infinite bandwidth, no loss.
    /// Useful for protocol-logic tests where physics only gets in the way.
    pub fn ideal(nodes: usize) -> Self {
        NetworkConfig {
            nodes,
            latency: LatencyModel::ZERO,
            egress_bandwidth_bps: None,
            proc_delay: LatencyModel::ZERO,
            loss: 0.0,
            metrics_bucket: Duration::from_secs(10),
        }
    }

    /// A 1 Gbps LAN resembling the paper's testbed: 15 servers, 8 cores
    /// each, everything in Docker containers. The latency constants model
    /// switch + container networking; the per-message processing delay
    /// models gRPC handling, protobuf decoding and Go runtime pauses
    /// (the occasional 30–60 ms spike is a GC/scheduling hiccup).
    pub fn lan(nodes: usize) -> Self {
        NetworkConfig {
            nodes,
            latency: LatencyModel::Lan {
                base: Duration::from_micros(250),
                jitter: Duration::from_micros(400),
                spike_prob: 0.01,
                spike_mult: 20,
            },
            egress_bandwidth_bps: Some(1_000_000_000),
            proc_delay: LatencyModel::Lan {
                base: Duration::from_micros(1_500),
                jitter: Duration::from_micros(2_000),
                spike_prob: 0.01,
                spike_mult: 25,
            },
            loss: 0.0,
            metrics_bucket: Duration::from_secs(10),
        }
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if self.nodes == 0 {
            return Err("network must have at least one node".into());
        }
        if !(0.0..=1.0).contains(&self.loss) {
            return Err(format!("loss probability {} outside [0, 1]", self.loss));
        }
        if self.metrics_bucket.is_zero() {
            return Err("metrics bucket width must be positive".into());
        }
        if let Some(0) = self.egress_bandwidth_bps {
            return Err("egress bandwidth must be positive when set".into());
        }
        Ok(())
    }
}

/// Down-link tracking as a bitset over unordered node pairs.
///
/// `link_up` runs on every send, so it must be branch-cheap: the common
/// fully-connected case is one integer compare (`down == 0`), and a
/// partitioned network costs a shift-and-mask instead of the seed's
/// per-send `HashSet<(u32, u32)>` hash + probe. Pairs are indexed
/// `lo * nodes + hi` into an n×n grid — only the `lo <= hi` half is ever
/// addressed, trading ~2× the strict-triangle memory (≈1.3 KB at
/// n = 100) for trivially verifiable indexing. The word storage is
/// allocated lazily on the first cut link, so healthy simulations pay
/// nothing.
#[derive(Debug, Default)]
struct LinkMatrix {
    nodes: usize,
    words: Vec<u64>,
    /// Number of links currently down.
    down: usize,
}

impl LinkMatrix {
    fn new(nodes: usize) -> Self {
        LinkMatrix {
            nodes,
            words: Vec::new(),
            down: 0,
        }
    }

    /// Bit index of the unordered pair; `None` when either id is out of
    /// range (such links are treated as permanently up).
    fn index(&self, a: NodeId, b: NodeId) -> Option<usize> {
        let (lo, hi) = (a.0.min(b.0) as usize, a.0.max(b.0) as usize);
        (hi < self.nodes).then(|| lo * self.nodes + hi)
    }

    fn set_down(&mut self, a: NodeId, b: NodeId) {
        let Some(idx) = self.index(a, b) else { return };
        if self.words.is_empty() {
            self.words = vec![0; self.nodes * self.nodes / 64 + 1];
        }
        let bit = 1u64 << (idx % 64);
        let word = &mut self.words[idx / 64];
        if *word & bit == 0 {
            *word |= bit;
            self.down += 1;
        }
    }

    fn set_up(&mut self, a: NodeId, b: NodeId) {
        let Some(idx) = self.index(a, b) else { return };
        let Some(word) = self.words.get_mut(idx / 64) else {
            return;
        };
        let bit = 1u64 << (idx % 64);
        if *word & bit != 0 {
            *word &= !bit;
            self.down -= 1;
        }
    }

    fn is_up(&self, a: NodeId, b: NodeId) -> bool {
        if self.down == 0 {
            return true;
        }
        match self.index(a, b) {
            Some(idx) => self.words[idx / 64] & (1u64 << (idx % 64)) == 0,
            None => true,
        }
    }

    fn clear(&mut self) {
        if self.down > 0 {
            self.words.iter_mut().for_each(|w| *w = 0);
            self.down = 0;
        }
    }
}

/// Mutable network state: NIC queues, link/node status.
#[derive(Debug)]
pub struct NetState {
    config: NetworkConfig,
    /// Instant at which each node's egress NIC becomes free.
    egress_free: Vec<Time>,
    /// Instant at which each node's ingress processing becomes free.
    ingress_free: Vec<Time>,
    node_up: Vec<bool>,
    down_links: LinkMatrix,
}

impl NetState {
    /// Builds the state for a validated configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see [`NetworkConfig::validate`]).
    pub fn new(config: NetworkConfig) -> Self {
        if let Err(e) = config.validate() {
            panic!("invalid network config: {e}");
        }
        let n = config.nodes;
        NetState {
            config,
            egress_free: vec![Time::ZERO; n],
            ingress_free: vec![Time::ZERO; n],
            node_up: vec![true; n],
            down_links: LinkMatrix::new(n),
        }
    }

    /// The static configuration this state was built from.
    pub fn config(&self) -> &NetworkConfig {
        &self.config
    }

    /// Number of nodes in the network.
    pub fn len(&self) -> usize {
        self.config.nodes
    }

    /// `true` when the network has no nodes (never, post-validation).
    pub fn is_empty(&self) -> bool {
        self.config.nodes == 0
    }

    /// Whether `node` is currently up.
    pub fn is_up(&self, node: NodeId) -> bool {
        self.node_up.get(node.index()).copied().unwrap_or(false)
    }

    /// Marks `node` up or down. Messages to or from a down node are dropped.
    pub fn set_up(&mut self, node: NodeId, up: bool) {
        if let Some(slot) = self.node_up.get_mut(node.index()) {
            *slot = up;
        }
        if up {
            // A rebooted node starts with idle NIC and CPU.
            self.egress_free[node.index()] = Time::ZERO;
            self.ingress_free[node.index()] = Time::ZERO;
        }
    }

    /// Cuts the (bidirectional) link between `a` and `b`.
    pub fn set_link_down(&mut self, a: NodeId, b: NodeId) {
        self.down_links.set_down(a, b);
    }

    /// Restores the link between `a` and `b`.
    pub fn set_link_up(&mut self, a: NodeId, b: NodeId) {
        self.down_links.set_up(a, b);
    }

    /// Whether the link between `a` and `b` currently carries traffic.
    pub fn link_up(&self, a: NodeId, b: NodeId) -> bool {
        self.down_links.is_up(a, b)
    }

    /// Partitions the network into the given groups: links between nodes of
    /// different groups go down, links within a group come up.
    pub fn partition(&mut self, groups: &[Vec<NodeId>]) {
        self.down_links.clear();
        for (gi, group) in groups.iter().enumerate() {
            for other in groups.iter().skip(gi + 1) {
                for &a in group {
                    for &b in other {
                        self.set_link_down(a, b);
                    }
                }
            }
        }
    }

    /// Heals all partitions and cut links.
    pub fn heal(&mut self) {
        self.down_links.clear();
    }

    /// Computes the departure instant of a message of `size` bytes leaving
    /// `from` at `now`, advancing the egress queue.
    pub fn egress_departure(&mut self, from: NodeId, now: Time, size: usize) -> Time {
        let ser = match self.config.egress_bandwidth_bps {
            None => Duration::ZERO,
            Some(bps) => {
                let bits = size as u64 * 8;
                Duration::from_nanos(bits.saturating_mul(1_000_000_000) / bps)
            }
        };
        let start = now.max(self.egress_free[from.index()]);
        let depart = start + ser;
        self.egress_free[from.index()] = depart;
        depart
    }

    /// Computes the delivery instant of a message arriving at `to` at
    /// `arrival`, advancing the ingress processing queue by a sampled
    /// processing delay.
    pub fn ingress_delivery(&mut self, to: NodeId, arrival: Time, rng: &mut StdRng) -> Time {
        let proc = self.config.proc_delay.sample(rng);
        self.ingress_delivery_with(to, arrival, proc)
    }

    /// [`NetState::ingress_delivery`] with the processing delay supplied by
    /// the caller — the entry point for engines that draw `proc` from a
    /// dedicated sample stream instead of the shared generator.
    pub fn ingress_delivery_with(&mut self, to: NodeId, arrival: Time, proc: Duration) -> Time {
        let start = arrival.max(self.ingress_free[to.index()]);
        let deliver = start + proc;
        self.ingress_free[to.index()] = deliver;
        deliver
    }

    /// Occupies `node`'s processing capacity for `dur` starting at `now`;
    /// subsequent deliveries queue behind it. Used to model CPU-bound work
    /// such as block validation.
    pub fn occupy(&mut self, node: NodeId, now: Time, dur: Duration) {
        let start = now.max(self.ingress_free[node.index()]);
        self.ingress_free[node.index()] = start + dur;
    }

    /// Instant at which `node`'s ingress processing becomes free.
    pub fn ingress_free_at(&self, node: NodeId) -> Time {
        self.ingress_free[node.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    #[test]
    fn constant_latency_is_constant() {
        let m = LatencyModel::Constant(Duration::from_millis(3));
        let mut r = rng();
        for _ in 0..10 {
            assert_eq!(m.sample(&mut r), Duration::from_millis(3));
        }
        assert_eq!(m.mean(), Duration::from_millis(3));
    }

    #[test]
    fn uniform_latency_within_bounds() {
        let m = LatencyModel::Uniform {
            min: Duration::from_millis(1),
            max: Duration::from_millis(5),
        };
        let mut r = rng();
        for _ in 0..1000 {
            let d = m.sample(&mut r);
            assert!(d >= Duration::from_millis(1) && d <= Duration::from_millis(5));
        }
        assert_eq!(m.mean(), Duration::from_millis(3));
    }

    #[test]
    fn uniform_degenerate_range() {
        let m = LatencyModel::Uniform {
            min: Duration::from_millis(2),
            max: Duration::from_millis(2),
        };
        assert_eq!(m.sample(&mut rng()), Duration::from_millis(2));
    }

    #[test]
    fn lan_latency_at_least_base() {
        let m = LatencyModel::Lan {
            base: Duration::from_micros(100),
            jitter: Duration::from_micros(50),
            spike_prob: 0.1,
            spike_mult: 10,
        };
        let mut r = rng();
        for _ in 0..1000 {
            assert!(m.sample(&mut r) >= Duration::from_micros(100));
        }
    }

    #[test]
    fn lan_mean_accounts_for_spikes() {
        let m = LatencyModel::Lan {
            base: Duration::from_micros(100),
            jitter: Duration::from_micros(100),
            spike_prob: 0.5,
            spike_mult: 3,
        };
        // plain mean 200us, spiked 600us, 50/50 => 400us
        assert_eq!(m.mean(), Duration::from_micros(400));
    }

    /// The batched fill must be draw-for-draw identical to the scalar
    /// sampler — the invariant `SampleStream` refills rest on.
    #[test]
    fn fill_matches_scalar_sampling_exactly() {
        let models = [
            LatencyModel::Constant(Duration::from_millis(3)),
            LatencyModel::Uniform {
                min: Duration::from_millis(1),
                max: Duration::from_millis(5),
            },
            LatencyModel::Lan {
                base: Duration::from_micros(250),
                jitter: Duration::from_micros(400),
                spike_prob: 0.01,
                spike_mult: 20,
            },
            // No spikes: the spike draw must vanish from the stream, as it
            // does in the scalar path.
            LatencyModel::Lan {
                base: Duration::from_micros(100),
                jitter: Duration::from_micros(200),
                spike_prob: 0.0,
                spike_mult: 7,
            },
        ];
        for model in models {
            let mut scalar_rng = StdRng::seed_from_u64(99);
            let scalar: Vec<Duration> = (0..513).map(|_| model.sample(&mut scalar_rng)).collect();
            let mut batch_rng = StdRng::seed_from_u64(99);
            let mut batched = vec![Duration::ZERO; 513];
            model.fill(&mut batch_rng, &mut batched);
            assert_eq!(scalar, batched, "model {model:?}");
            assert_eq!(
                scalar_rng, batch_rng,
                "generators must end in the same state"
            );
        }
    }

    #[test]
    fn sample_stream_is_position_pinned() {
        let model = LatencyModel::Lan {
            base: Duration::from_micros(250),
            jitter: Duration::from_micros(400),
            spike_prob: 0.01,
            spike_mult: 20,
        };
        let mut stream = SampleStream::new(model, 7);
        let mut scalar_rng = StdRng::seed_from_u64(7);
        // Span several refills so the batch boundary is crossed.
        for i in 0..(3 * SampleStream::BATCH + 17) {
            assert_eq!(
                stream.next_sample(),
                model.sample(&mut scalar_rng),
                "draw {i} diverged"
            );
        }
    }

    #[test]
    fn loss_stream_matches_scalar_bernoulli_draws() {
        let mut stream = LossStream::new(13);
        let mut scalar_rng = StdRng::seed_from_u64(13);
        for i in 0..(2 * SampleStream::BATCH + 5) {
            let expected = scalar_rng.random::<f64>() < 0.25;
            assert_eq!(stream.hit(0.25), expected, "draw {i} diverged");
        }
    }

    #[test]
    fn ingress_delivery_with_matches_sampled_variant() {
        let cfg = NetworkConfig::lan(2);
        let mut a = NetState::new(cfg.clone());
        let mut b = NetState::new(cfg.clone());
        let mut rng_a = rng();
        let mut rng_b = rng();
        for i in 0..100u64 {
            let arrival = Time::from_nanos(i * 1000);
            let via_rng = a.ingress_delivery(NodeId(1), arrival, &mut rng_a);
            let proc = cfg.proc_delay.sample(&mut rng_b);
            let via_proc = b.ingress_delivery_with(NodeId(1), arrival, proc);
            assert_eq!(via_rng, via_proc);
        }
    }

    #[test]
    fn egress_queue_serializes_back_to_back_sends() {
        let mut cfg = NetworkConfig::ideal(2);
        cfg.egress_bandwidth_bps = Some(8_000_000_000); // 1 GB/s => 1 ns per byte
        let mut net = NetState::new(cfg);
        let a = NodeId(0);
        let d1 = net.egress_departure(a, Time::ZERO, 1000);
        let d2 = net.egress_departure(a, Time::ZERO, 1000);
        assert_eq!(d1, Time::from_nanos(1000));
        assert_eq!(d2, Time::from_nanos(2000));
        // A later send after the queue drained starts fresh.
        let d3 = net.egress_departure(a, Time::from_nanos(10_000), 1000);
        assert_eq!(d3, Time::from_nanos(11_000));
    }

    #[test]
    fn infinite_bandwidth_departs_immediately() {
        let mut net = NetState::new(NetworkConfig::ideal(2));
        let d = net.egress_departure(NodeId(0), Time::from_secs(1), 1 << 30);
        assert_eq!(d, Time::from_secs(1));
    }

    #[test]
    fn occupy_delays_subsequent_deliveries() {
        let mut net = NetState::new(NetworkConfig::ideal(2));
        let n = NodeId(1);
        net.occupy(n, Time::ZERO, Duration::from_millis(50));
        let mut r = rng();
        let deliver = net.ingress_delivery(n, Time::from_millis(10), &mut r);
        assert_eq!(deliver, Time::from_millis(50));
    }

    #[test]
    fn partition_cuts_cross_group_links_only() {
        let mut net = NetState::new(NetworkConfig::ideal(4));
        let (a, b, c, d) = (NodeId(0), NodeId(1), NodeId(2), NodeId(3));
        net.partition(&[vec![a, b], vec![c, d]]);
        assert!(net.link_up(a, b));
        assert!(net.link_up(c, d));
        assert!(!net.link_up(a, c));
        assert!(!net.link_up(b, d));
        net.heal();
        assert!(net.link_up(a, c));
    }

    #[test]
    fn node_down_and_reboot() {
        let mut net = NetState::new(NetworkConfig::ideal(2));
        let n = NodeId(0);
        assert!(net.is_up(n));
        net.set_up(n, false);
        assert!(!net.is_up(n));
        net.set_up(n, true);
        assert!(net.is_up(n));
    }

    #[test]
    fn config_validation_rejects_nonsense() {
        assert!(NetworkConfig::ideal(0).validate().is_err());
        let mut c = NetworkConfig::ideal(1);
        c.loss = 1.5;
        assert!(c.validate().is_err());
        let mut c = NetworkConfig::ideal(1);
        c.egress_bandwidth_bps = Some(0);
        assert!(c.validate().is_err());
        let mut c = NetworkConfig::ideal(1);
        c.metrics_bucket = Duration::ZERO;
        assert!(c.validate().is_err());
        assert!(NetworkConfig::lan(100).validate().is_ok());
    }
}
