//! # desim — deterministic discrete-event simulation kernel
//!
//! A small, dependency-light simulation engine for message-passing
//! distributed protocols. It provides:
//!
//! * a virtual clock ([`Time`], [`Duration`]) with nanosecond resolution;
//! * an event queue with a total, replayable order;
//! * a network model ([`NetworkConfig`], [`LatencyModel`]) with per-node
//!   egress bandwidth queues, receiver processing delays, packet loss,
//!   link partitions and node crashes;
//! * byte/message accounting ([`NetMetrics`]) bucketed over time, as needed
//!   to reproduce bandwidth-over-time figures.
//!
//! Protocols implement [`Protocol`] and hold the state of every node; the
//! engine ([`Simulation`]) routes deliveries and timers to them through a
//! [`Ctx`] handle. Determinism contract: for a fixed protocol, network
//! configuration and seed, the execution trace is bit-for-bit identical
//! across runs — protocols must therefore avoid iterating hash maps when the
//! iteration order influences messages or RNG draws.
//!
//! ```
//! use desim::{Ctx, Duration, Message, NetworkConfig, NodeId, Protocol, Simulation};
//!
//! #[derive(Clone, Debug)]
//! struct Hello;
//! impl Message for Hello {
//!     fn wire_size(&self) -> usize { 5 }
//! }
//!
//! struct Count(u32);
//! impl Protocol for Count {
//!     type Msg = Hello;
//!     type Timer = ();
//!     fn on_message(&mut self, _: &mut Ctx<'_, Hello, ()>, _: NodeId, _: NodeId, _: Hello) {
//!         self.0 += 1;
//!     }
//!     fn on_timer(&mut self, ctx: &mut Ctx<'_, Hello, ()>, node: NodeId, _: ()) {
//!         ctx.send(node, NodeId(1), Hello);
//!     }
//! }
//!
//! let mut sim = Simulation::new(Count(0), NetworkConfig::ideal(2), 1);
//! sim.with_ctx(|_, ctx| { ctx.set_timer(NodeId(0), Duration::from_millis(5), ()); });
//! sim.run_until_idle();
//! assert_eq!(sim.protocol().0, 1);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod batch;
mod engine;
mod kind;
mod metrics;
mod net;
pub mod sched;
mod time;

pub use batch::{pool_workers_spawned, run_batch, run_batch_with_workers};
pub use engine::{Ctx, Message, Protocol, RngMode, Simulation, TimerId, TraceEvent};
pub use kind::{KindBytes, KindId};
pub use metrics::{KindStats, NetMetrics};
pub use net::{LatencyModel, LossStream, NetState, NetworkConfig, NodeId, SampleStream};
pub use time::{Duration, Time};
