//! The event loop: a deterministic executor for message-passing protocols.
//!
//! A [`Protocol`] implementation owns the state of *all* simulated nodes and
//! reacts to message deliveries and timer expirations through a [`Ctx`]
//! handle that can send messages, arm timers and manipulate the network.
//! Events are totally ordered by `(time, insertion sequence)`, so a given
//! seed always replays the exact same execution.
//!
//! The event queue is a hierarchical [`TimingWheel`] (see [`crate::sched`]):
//! payloads sit still in a slab while 24-byte stubs move through time
//! buckets, cancellation is an O(1) generation bump, and the pop order is
//! the exact `(time, seq)` total order the seed's global `BinaryHeap`
//! produced — the scheduler-equivalence proptest in `tests/scheduler.rs`
//! pins the two against each other.

use std::fmt;

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::kind::KindId;
use crate::metrics::NetMetrics;
use crate::net::{LatencyModel, LossStream, NetState, NetworkConfig, NodeId, SampleStream};
use crate::sched::{EventId, Popped, Scheduler, TimingWheel};
use crate::time::{Duration, Time};

/// A wire message: anything the engine can transmit between nodes.
///
/// `wire_size` feeds both the bandwidth model (serialization delay) and the
/// byte accounting; `kind` tags the message for per-kind statistics.
pub trait Message: Clone + fmt::Debug {
    /// Size of the message on the wire, in bytes (headers included).
    fn wire_size(&self) -> usize;

    /// A short static tag used to group metrics (e.g. `"block"`, `"digest"`).
    fn kind(&self) -> &'static str {
        "message"
    }

    /// The interned id of [`Message::kind`], recorded per sent message.
    ///
    /// The default interns on every call, which takes a registry lock —
    /// correct everywhere, cheap in tests. High-volume message types
    /// should override this with a `OnceLock`-cached match so the hot
    /// path pays one atomic load instead.
    fn kind_id(&self) -> KindId {
        KindId::intern(self.kind())
    }
}

/// A protocol under simulation. One value of this type holds the state of
/// every node; the engine routes each event to it together with the node id
/// it concerns.
pub trait Protocol: Sized {
    /// The message type exchanged between nodes.
    type Msg: Message;
    /// The timer payload type.
    type Timer: fmt::Debug;

    /// Called when `msg` sent by `from` is delivered at `to`.
    fn on_message(
        &mut self,
        ctx: &mut Ctx<'_, Self::Msg, Self::Timer>,
        to: NodeId,
        from: NodeId,
        msg: Self::Msg,
    );

    /// Called when a timer armed for `node` expires.
    fn on_timer(
        &mut self,
        ctx: &mut Ctx<'_, Self::Msg, Self::Timer>,
        node: NodeId,
        timer: Self::Timer,
    );

    /// Called when a node transitions up or down (default: ignored).
    fn on_node_status(
        &mut self,
        ctx: &mut Ctx<'_, Self::Msg, Self::Timer>,
        node: NodeId,
        up: bool,
    ) {
        let _ = (ctx, node, up);
    }
}

/// Handle to a pending timer, usable for cancellation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimerId(EventId);

/// How the engine organizes its random draws.
///
/// # The four-stream determinism contract
///
/// Under [`RngMode::Unified`] (the default, and the seed engine's historical
/// behaviour) **one** generator feeds everything, interleaved in event
/// order: the loss draw and latency draw of each send, the ingress
/// processing draw of each arrival, and every protocol draw through
/// [`Ctx::rng`]. Any change to *when* one category draws therefore perturbs
/// all the others — which is exactly why batching draws is impossible in
/// this mode without breaking golden traces, and why every pre-existing
/// preset stays on it, bit for bit.
///
/// Under [`RngMode::Streams`] the draws are split across **four streams
/// with pinned positions**, each seeded by mixing the simulation seed with a
/// fixed per-stream tag:
///
/// | stream     | feeds                             | position meaning            |
/// |------------|-----------------------------------|-----------------------------|
/// | `protocol` | [`Ctx::rng`] (protocol logic)     | i-th protocol draw          |
/// | `latency`  | link latency of each send         | i-th undropped send         |
/// | `ingress`  | receiver processing per arrival   | i-th arrival at an up node  |
/// | `loss`     | Bernoulli loss check per send     | i-th send (lossy nets only) |
///
/// The i-th draw of a stream depends only on the seed and on `i` — never on
/// what the other streams consumed in between. That position-pinning makes
/// batch-refilled buffers ([`SampleStream`], [`LossStream`]) transparent:
/// precomputing 1024 latencies ahead of time consumes exactly the draws the
/// scalar path would have, in the same order. Traces in this mode are
/// deterministic and replayable per seed, but numerically different from
/// `Unified` (same distributions, different draws) — it is an opt-in for
/// new, throughput-oriented presets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum RngMode {
    /// One shared generator, draws interleaved in event order (the
    /// historical contract; byte-identical to every existing golden trace).
    #[default]
    Unified,
    /// Four dedicated position-pinned streams with batch-refilled buffers.
    Streams,
}

/// Per-stream seed tags (xored into the simulation seed). Fixed forever:
/// changing one re-rolls every stream-mode trace.
const LATENCY_STREAM_TAG: u64 = 0x4c41_5445_4e43_5901; // "LATENCY" | 1
const INGRESS_STREAM_TAG: u64 = 0x494e_4752_4553_5301; // "INGRESS" | 1
const LOSS_STREAM_TAG: u64 = 0x4c4f_5353_0000_0001; // "LOSS" | 1

/// The engine's randomness, in either mode. See [`RngMode`].
//
// One instance per simulation, embedded and never moved after
// construction — the size gap between variants costs nothing, and boxing
// the stream state would put a pointer chase on every latency draw.
#[allow(clippy::large_enum_variant)]
enum Rngs {
    Unified(StdRng),
    Streams {
        protocol: StdRng,
        latency: SampleStream,
        ingress: SampleStream,
        loss: LossStream,
    },
}

impl Rngs {
    fn new(mode: RngMode, seed: u64, config: &NetworkConfig) -> Self {
        match mode {
            RngMode::Unified => Rngs::Unified(StdRng::seed_from_u64(seed)),
            RngMode::Streams => Rngs::Streams {
                protocol: StdRng::seed_from_u64(seed),
                latency: SampleStream::new(config.latency, seed ^ LATENCY_STREAM_TAG),
                ingress: SampleStream::new(config.proc_delay, seed ^ INGRESS_STREAM_TAG),
                loss: LossStream::new(seed ^ LOSS_STREAM_TAG),
            },
        }
    }

    fn protocol(&mut self) -> &mut StdRng {
        match self {
            Rngs::Unified(rng) => rng,
            Rngs::Streams { protocol, .. } => protocol,
        }
    }

    /// One link-latency draw. `model` must be the config's latency model —
    /// in stream mode the stream was built over it at construction.
    fn latency(&mut self, model: &LatencyModel) -> Duration {
        match self {
            Rngs::Unified(rng) => model.sample(rng),
            Rngs::Streams { latency, .. } => latency.next_sample(),
        }
    }

    /// One ingress-processing draw (same caveat as [`Rngs::latency`]).
    fn ingress(&mut self, model: &LatencyModel) -> Duration {
        match self {
            Rngs::Unified(rng) => model.sample(rng),
            Rngs::Streams { ingress, .. } => ingress.next_sample(),
        }
    }

    /// One Bernoulli loss draw; only called when the loss probability is
    /// positive (in both modes the draw happens iff the network is lossy).
    fn loss_hit(&mut self, p: f64) -> bool {
        match self {
            Rngs::Unified(rng) => rand::RngExt::random::<f64>(rng) < p,
            Rngs::Streams { loss, .. } => loss.hit(p),
        }
    }
}

/// One protocol-visible event of a traced run: the `(time, seq, event)`
/// triple the cross-shard equivalence tests compare. Recording is off by
/// default (one branch per event); see [`Simulation::set_trace`].
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct TraceEvent {
    /// Virtual instant the event was handled.
    pub at: Time,
    /// The event's insertion sequence number — the tie-breaker of the
    /// engine's `(time, seq)` total order.
    pub seq: u64,
    /// Rendered event payload (delivery, timer or status transition).
    pub what: String,
}

enum EventKind<M, T> {
    /// Message reached `to`'s NIC; ingress processing not yet applied.
    Arrive {
        from: NodeId,
        to: NodeId,
        msg: M,
    },
    /// Message fully processed and ready for the protocol handler.
    Deliver {
        from: NodeId,
        to: NodeId,
        msg: M,
    },
    Timer {
        node: NodeId,
        timer: T,
    },
    NodeStatus {
        node: NodeId,
        up: bool,
    },
}

struct EngineCore<M, T> {
    time: Time,
    queue: TimingWheel<EventKind<M, T>>,
    net: NetState,
    rngs: Rngs,
    metrics: NetMetrics,
    events_processed: u64,
    /// Loss probability hoisted out of the config for the per-send check.
    loss: f64,
    /// Protocol-visible event log; `None` (the default) records nothing.
    trace: Option<Vec<TraceEvent>>,
}

impl<M: Message, T> EngineCore<M, T> {
    fn push(&mut self, at: Time, kind: EventKind<M, T>) {
        self.queue.push(at, kind);
    }

    fn send(&mut self, from: NodeId, to: NodeId, msg: M) {
        if !self.net.is_up(from) {
            self.metrics.record_drop_down();
            return;
        }
        let size = msg.wire_size();
        let kind = msg.kind_id();
        let depart = self.net.egress_departure(from, self.time, size);
        self.metrics.record_sent(from, depart, size, kind);
        let loss = self.loss;
        if loss > 0.0 && self.rngs.loss_hit(loss) {
            self.metrics.record_loss();
            return;
        }
        if !self.net.link_up(from, to) {
            self.metrics.record_drop_partition();
            return;
        }
        let model = self.net.config().latency;
        let latency = self.rngs.latency(&model);
        self.push(depart + latency, EventKind::Arrive { from, to, msg });
    }
}

/// The engine handle passed to every protocol callback.
///
/// Through it the protocol reads the clock, draws randomness, sends
/// messages, arms and cancels timers, occupies node CPU and manipulates the
/// network (partitions, node crashes).
pub struct Ctx<'a, M: Message, T> {
    core: &'a mut EngineCore<M, T>,
}

impl<M: Message, T> Ctx<'_, M, T> {
    /// Current virtual time.
    pub fn now(&self) -> Time {
        self.core.time
    }

    /// The simulation's deterministic protocol RNG. Under
    /// [`RngMode::Unified`] this is the single shared generator; under
    /// [`RngMode::Streams`] it is the dedicated protocol stream, insulated
    /// from the network-model draws.
    pub fn rng(&mut self) -> &mut StdRng {
        self.core.rngs.protocol()
    }

    /// Sends `msg` from `from` to `to`, subject to the network model.
    /// Messages to self are legal and traverse the loopback with the same
    /// latency model as any other link.
    pub fn send(&mut self, from: NodeId, to: NodeId, msg: M) {
        self.core.send(from, to, msg);
    }

    /// Arms a timer for `node` that fires `after` from now.
    pub fn set_timer(&mut self, node: NodeId, after: Duration, timer: T) -> TimerId {
        let at = self.core.time + after;
        TimerId(self.core.queue.push(at, EventKind::Timer { node, timer }))
    }

    /// Cancels a pending timer in O(1). Cancelling an already-fired timer
    /// is a no-op.
    pub fn cancel_timer(&mut self, id: TimerId) {
        self.core.queue.cancel(id.0);
    }

    /// Occupies `node`'s processing capacity for `dur`, queueing subsequent
    /// message deliveries behind the busy period (e.g. block validation).
    pub fn occupy(&mut self, node: NodeId, dur: Duration) {
        let now = self.core.time;
        self.core.net.occupy(node, now, dur);
    }

    /// Read access to the network accounting collected so far.
    pub fn metrics(&self) -> &NetMetrics {
        &self.core.metrics
    }

    /// Mutable access to the network state (partitions, links, node status).
    /// Prefer [`Ctx::set_node_status_after`] for node transitions so the
    /// protocol receives its `on_node_status` callback.
    pub fn net_mut(&mut self) -> &mut NetState {
        &mut self.core.net
    }

    /// Read access to the network state.
    pub fn net(&self) -> &NetState {
        &self.core.net
    }

    /// Schedules a node up/down transition `after` from now; the protocol's
    /// `on_node_status` hook fires when it takes effect.
    pub fn set_node_status_after(&mut self, after: Duration, node: NodeId, up: bool) {
        let at = self.core.time + after;
        self.core.push(at, EventKind::NodeStatus { node, up });
    }
}

impl<M: Message, T> fmt::Debug for Ctx<'_, M, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Ctx")
            .field("now", &self.core.time)
            .finish_non_exhaustive()
    }
}

/// A deterministic discrete-event simulation of one [`Protocol`].
///
/// ```
/// use desim::{Ctx, Duration, Message, NetworkConfig, NodeId, Protocol, Simulation};
///
/// #[derive(Clone, Debug)]
/// struct Ping(u32);
/// impl Message for Ping {
///     fn wire_size(&self) -> usize { 16 }
/// }
///
/// /// Forwards a token around the ring once.
/// struct Ring { n: u32, hops: u32 }
/// impl Protocol for Ring {
///     type Msg = Ping;
///     type Timer = ();
///     fn on_message(&mut self, ctx: &mut Ctx<'_, Ping, ()>, to: NodeId, _from: NodeId, msg: Ping) {
///         self.hops += 1;
///         if msg.0 > 0 {
///             ctx.send(to, NodeId((to.0 + 1) % self.n), Ping(msg.0 - 1));
///         }
///     }
///     fn on_timer(&mut self, _ctx: &mut Ctx<'_, Ping, ()>, _node: NodeId, _t: ()) {}
/// }
///
/// let mut sim = Simulation::new(Ring { n: 4, hops: 0 }, NetworkConfig::ideal(4), 42);
/// sim.with_ctx(|_, ctx| ctx.send(NodeId(0), NodeId(1), Ping(7)));
/// sim.run_until_idle();
/// assert_eq!(sim.protocol().hops, 8);
/// ```
pub struct Simulation<P: Protocol> {
    protocol: P,
    core: EngineCore<P::Msg, P::Timer>,
}

impl<P: Protocol> fmt::Debug for Simulation<P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Simulation")
            .field("now", &self.core.time)
            .field("pending_events", &self.core.queue.len())
            .field("events_processed", &self.core.events_processed)
            .finish_non_exhaustive()
    }
}

impl<P: Protocol> Simulation<P> {
    /// Creates a simulation over `config` with a deterministic `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `config` fails validation.
    pub fn new(protocol: P, config: NetworkConfig, seed: u64) -> Self {
        Self::with_rng_mode(protocol, config, seed, RngMode::Unified)
    }

    /// [`Simulation::new`] with an explicit randomness layout (see
    /// [`RngMode`] for the determinism contract of each mode).
    ///
    /// # Panics
    ///
    /// Panics if `config` fails validation.
    pub fn with_rng_mode(protocol: P, config: NetworkConfig, seed: u64, mode: RngMode) -> Self {
        let metrics = NetMetrics::new(config.nodes, config.metrics_bucket);
        let loss = config.loss;
        let rngs = Rngs::new(mode, seed, &config);
        Simulation {
            protocol,
            core: EngineCore {
                time: Time::ZERO,
                queue: TimingWheel::new(),
                net: NetState::new(config),
                rngs,
                metrics,
                events_processed: 0,
                loss,
                trace: None,
            },
        }
    }

    /// Enables (or disables) recording of every protocol-visible event as a
    /// [`TraceEvent`]. Used by the cross-shard equivalence tests; costs one
    /// branch per event when off, so leave it off in production runs.
    pub fn set_trace(&mut self, on: bool) {
        self.core.trace = if on { Some(Vec::new()) } else { None };
    }

    /// Drains the recorded trace (empty when tracing is off).
    pub fn take_trace(&mut self) -> Vec<TraceEvent> {
        match self.core.trace.as_mut() {
            Some(t) => std::mem::take(t),
            None => Vec::new(),
        }
    }

    /// Runs `f` with the protocol and a context at the current time; used to
    /// inject initial events or inspect state mid-run.
    pub fn with_ctx<R>(
        &mut self,
        f: impl FnOnce(&mut P, &mut Ctx<'_, P::Msg, P::Timer>) -> R,
    ) -> R {
        let mut ctx = Ctx {
            core: &mut self.core,
        };
        f(&mut self.protocol, &mut ctx)
    }

    /// Processes the next event, if any. Returns `false` when the queue is
    /// empty.
    pub fn step(&mut self) -> bool {
        loop {
            let (at, seq, kind) = match self.core.queue.pop() {
                None => return false,
                Some(Popped::Cancelled { at }) => {
                    // Cancelled timers keep their queue position and still
                    // advance the clock when popped — the seed engine's
                    // behaviour, preserved bit for bit.
                    debug_assert!(at >= self.core.time, "event from the past");
                    self.core.time = at;
                    continue;
                }
                Some(Popped::Event { at, seq, payload }) => (at, seq, payload),
            };
            debug_assert!(at >= self.core.time, "event from the past");
            self.core.time = at;
            match kind {
                EventKind::Arrive { from, to, msg } => {
                    if !self.core.net.is_up(to) {
                        self.core.metrics.record_drop_down();
                        continue;
                    }
                    let deliver_at = {
                        let model = self.core.net.config().proc_delay;
                        let proc = self.core.rngs.ingress(&model);
                        self.core.net.ingress_delivery_with(to, at, proc)
                    };
                    if deliver_at == at {
                        self.core.metrics.record_received(to, at, msg.wire_size());
                        self.core.events_processed += 1;
                        if let Some(trace) = self.core.trace.as_mut() {
                            trace.push(TraceEvent {
                                at,
                                seq,
                                what: format!("deliver {from}->{to} {msg:?}"),
                            });
                        }
                        let mut ctx = Ctx {
                            core: &mut self.core,
                        };
                        self.protocol.on_message(&mut ctx, to, from, msg);
                    } else {
                        self.core
                            .push(deliver_at, EventKind::Deliver { from, to, msg });
                        continue;
                    }
                }
                EventKind::Deliver { from, to, msg } => {
                    if !self.core.net.is_up(to) {
                        self.core.metrics.record_drop_down();
                        continue;
                    }
                    self.core.metrics.record_received(to, at, msg.wire_size());
                    self.core.events_processed += 1;
                    if let Some(trace) = self.core.trace.as_mut() {
                        trace.push(TraceEvent {
                            at,
                            seq,
                            what: format!("deliver {from}->{to} {msg:?}"),
                        });
                    }
                    let mut ctx = Ctx {
                        core: &mut self.core,
                    };
                    self.protocol.on_message(&mut ctx, to, from, msg);
                }
                EventKind::Timer { node, timer } => {
                    if !self.core.net.is_up(node) {
                        continue;
                    }
                    self.core.events_processed += 1;
                    if let Some(trace) = self.core.trace.as_mut() {
                        trace.push(TraceEvent {
                            at,
                            seq,
                            what: format!("timer @{node} {timer:?}"),
                        });
                    }
                    let mut ctx = Ctx {
                        core: &mut self.core,
                    };
                    self.protocol.on_timer(&mut ctx, node, timer);
                }
                EventKind::NodeStatus { node, up } => {
                    self.core.net.set_up(node, up);
                    self.core.events_processed += 1;
                    if let Some(trace) = self.core.trace.as_mut() {
                        trace.push(TraceEvent {
                            at,
                            seq,
                            what: format!("status {node} up={up}"),
                        });
                    }
                    let mut ctx = Ctx {
                        core: &mut self.core,
                    };
                    self.protocol.on_node_status(&mut ctx, node, up);
                }
            }
            return true;
        }
    }

    /// Processes every event scheduled at or before `t`, then advances the
    /// clock to exactly `t`.
    pub fn run_until(&mut self, t: Time) {
        while let Some(at) = self.core.queue.peek_time() {
            if at > t {
                break;
            }
            self.step();
        }
        self.core.time = self.core.time.max(t);
    }

    /// Runs for `d` of virtual time from the current instant.
    pub fn run_for(&mut self, d: Duration) {
        let target = self.core.time + d;
        self.run_until(target);
    }

    /// Processes events until the queue drains.
    pub fn run_until_idle(&mut self) {
        while self.step() {}
    }

    /// Current virtual time.
    pub fn now(&self) -> Time {
        self.core.time
    }

    /// Number of events handled so far (deliveries, timers, transitions).
    pub fn events_processed(&self) -> u64 {
        self.core.events_processed
    }

    /// The network accounting collected so far.
    pub fn metrics(&self) -> &NetMetrics {
        &self.core.metrics
    }

    /// Shared access to the protocol state.
    pub fn protocol(&self) -> &P {
        &self.protocol
    }

    /// Exclusive access to the protocol state.
    pub fn protocol_mut(&mut self) -> &mut P {
        &mut self.protocol
    }

    /// Consumes the simulation, returning the protocol state.
    pub fn into_protocol(self) -> P {
        self.protocol
    }

    /// Drives a batch of independent simulations across cores and returns
    /// each `drive` result in input order.
    ///
    /// Every simulation owns its clock, queue and RNG, so the parallel fan
    /// out is exactly equivalent to driving them one after another — the
    /// entry point the experiment layer's figure/table sweeps build on.
    ///
    /// ```
    /// use desim::{NetworkConfig, NodeId, Simulation};
    /// # use desim::{Ctx, Message, Protocol};
    /// # #[derive(Clone, Debug)]
    /// # struct Ping;
    /// # impl Message for Ping { fn wire_size(&self) -> usize { 8 } }
    /// # struct Count(u64);
    /// # impl Protocol for Count {
    /// #     type Msg = Ping;
    /// #     type Timer = ();
    /// #     fn on_message(&mut self, _: &mut Ctx<'_, Ping, ()>, _: NodeId, _: NodeId, _: Ping) { self.0 += 1; }
    /// #     fn on_timer(&mut self, _: &mut Ctx<'_, Ping, ()>, _: NodeId, _: ()) {}
    /// # }
    /// let sims: Vec<_> = (0..4u64)
    ///     .map(|seed| {
    ///         let mut sim = Simulation::new(Count(0), NetworkConfig::ideal(2), seed);
    ///         sim.with_ctx(|_, ctx| ctx.send(NodeId(0), NodeId(1), Ping));
    ///         sim
    ///     })
    ///     .collect();
    /// let counts = Simulation::run_batch(sims, |mut sim| {
    ///     sim.run_until_idle();
    ///     sim.into_protocol().0
    /// });
    /// assert_eq!(counts, vec![1, 1, 1, 1]);
    /// ```
    pub fn run_batch<F, R>(sims: Vec<Simulation<P>>, drive: F) -> Vec<R>
    where
        P: Send,
        P::Msg: Send,
        P::Timer: Send,
        R: Send,
        F: Fn(Simulation<P>) -> R + Sync,
    {
        crate::batch::run_batch(sims, drive)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Clone, Debug, PartialEq)]
    struct Note(&'static str, u64);
    impl Message for Note {
        fn wire_size(&self) -> usize {
            self.1 as usize
        }
        fn kind(&self) -> &'static str {
            self.0
        }
    }

    /// Records every callback with its timestamp; sends/schedules nothing.
    #[derive(Default)]
    struct Recorder {
        log: Vec<(u64, String)>,
    }
    impl Protocol for Recorder {
        type Msg = Note;
        type Timer = &'static str;
        fn on_message(
            &mut self,
            ctx: &mut Ctx<'_, Note, &'static str>,
            to: NodeId,
            from: NodeId,
            msg: Note,
        ) {
            self.log.push((
                ctx.now().as_nanos(),
                format!("msg {} {}->{}", msg.0, from, to),
            ));
        }
        fn on_timer(
            &mut self,
            ctx: &mut Ctx<'_, Note, &'static str>,
            node: NodeId,
            timer: &'static str,
        ) {
            self.log
                .push((ctx.now().as_nanos(), format!("timer {timer} @{node}")));
        }
        fn on_node_status(
            &mut self,
            ctx: &mut Ctx<'_, Note, &'static str>,
            node: NodeId,
            up: bool,
        ) {
            self.log
                .push((ctx.now().as_nanos(), format!("status {node} up={up}")));
        }
    }

    fn ideal(n: usize) -> NetworkConfig {
        NetworkConfig::ideal(n)
    }

    #[test]
    fn same_timestamp_events_fire_in_insertion_order() {
        let mut sim = Simulation::new(Recorder::default(), ideal(3), 1);
        sim.with_ctx(|_, ctx| {
            ctx.set_timer(NodeId(0), Duration::from_secs(1), "a");
            ctx.set_timer(NodeId(1), Duration::from_secs(1), "b");
            ctx.set_timer(NodeId(2), Duration::from_secs(1), "c");
        });
        sim.run_until_idle();
        let names: Vec<_> = sim.protocol().log.iter().map(|(_, s)| s.clone()).collect();
        assert_eq!(names, vec!["timer a @n0", "timer b @n1", "timer c @n2"]);
    }

    #[test]
    fn cancelled_timers_do_not_fire() {
        let mut sim = Simulation::new(Recorder::default(), ideal(1), 1);
        sim.with_ctx(|_, ctx| {
            let id = ctx.set_timer(NodeId(0), Duration::from_secs(1), "dead");
            ctx.set_timer(NodeId(0), Duration::from_secs(2), "alive");
            ctx.cancel_timer(id);
        });
        sim.run_until_idle();
        assert_eq!(sim.protocol().log.len(), 1);
        assert!(sim.protocol().log[0].1.contains("alive"));
    }

    #[test]
    fn run_until_stops_at_boundary_and_advances_clock() {
        let mut sim = Simulation::new(Recorder::default(), ideal(1), 1);
        sim.with_ctx(|_, ctx| {
            ctx.set_timer(NodeId(0), Duration::from_secs(1), "early");
            ctx.set_timer(NodeId(0), Duration::from_secs(5), "late");
        });
        sim.run_until(Time::from_secs(3));
        assert_eq!(sim.protocol().log.len(), 1);
        assert_eq!(sim.now(), Time::from_secs(3));
        sim.run_until_idle();
        assert_eq!(sim.protocol().log.len(), 2);
        assert_eq!(sim.now(), Time::from_secs(5));
    }

    #[test]
    fn messages_to_down_nodes_are_dropped_and_counted() {
        let mut sim = Simulation::new(Recorder::default(), ideal(2), 1);
        sim.with_ctx(|_, ctx| {
            ctx.net_mut().set_up(NodeId(1), false);
            ctx.send(NodeId(0), NodeId(1), Note("x", 8));
        });
        sim.run_until_idle();
        assert!(sim.protocol().log.is_empty());
        assert_eq!(sim.metrics().drops_down(), 1);
        // Bytes still count as sent: the sender did transmit.
        assert_eq!(sim.metrics().total_sent(NodeId(0)), 8);
    }

    #[test]
    fn partitioned_links_drop_messages() {
        let mut sim = Simulation::new(Recorder::default(), ideal(2), 1);
        sim.with_ctx(|_, ctx| {
            ctx.net_mut().set_link_down(NodeId(0), NodeId(1));
            ctx.send(NodeId(0), NodeId(1), Note("x", 8));
        });
        sim.run_until_idle();
        assert!(sim.protocol().log.is_empty());
        assert_eq!(sim.metrics().drops_partition(), 1);
    }

    #[test]
    fn node_status_transitions_invoke_hook() {
        let mut sim = Simulation::new(Recorder::default(), ideal(2), 1);
        sim.with_ctx(|_, ctx| {
            ctx.set_node_status_after(Duration::from_secs(1), NodeId(1), false);
            ctx.set_node_status_after(Duration::from_secs(2), NodeId(1), true);
        });
        sim.run_until_idle();
        let names: Vec<_> = sim.protocol().log.iter().map(|(_, s)| s.as_str()).collect();
        assert_eq!(names, vec!["status n1 up=false", "status n1 up=true"]);
    }

    #[test]
    fn occupy_defers_delivery_and_preserves_order() {
        let mut cfg = ideal(2);
        cfg.proc_delay = LatencyModelFixture::zero();
        let mut sim = Simulation::new(Recorder::default(), cfg, 1);
        sim.with_ctx(|_, ctx| {
            ctx.occupy(NodeId(1), Duration::from_millis(50));
            ctx.send(NodeId(0), NodeId(1), Note("first", 8));
            ctx.send(NodeId(0), NodeId(1), Note("second", 8));
        });
        sim.run_until_idle();
        let log = &sim.protocol().log;
        assert_eq!(log.len(), 2);
        assert_eq!(log[0].0, Duration::from_millis(50).as_nanos());
        assert!(log[0].1.contains("first"));
        assert!(log[1].1.contains("second"));
    }

    /// Tiny helper so the test above reads clearly.
    struct LatencyModelFixture;
    impl LatencyModelFixture {
        fn zero() -> crate::net::LatencyModel {
            crate::net::LatencyModel::ZERO
        }
    }

    #[test]
    fn lossy_network_drops_roughly_the_right_fraction() {
        let mut cfg = ideal(2);
        cfg.loss = 0.5;
        let mut sim = Simulation::new(Recorder::default(), cfg, 99);
        sim.with_ctx(|_, ctx| {
            for _ in 0..1000 {
                ctx.send(NodeId(0), NodeId(1), Note("x", 1));
            }
        });
        sim.run_until_idle();
        let delivered = sim.protocol().log.len();
        let lost = sim.metrics().losses() as usize;
        assert_eq!(delivered + lost, 1000);
        assert!((350..=650).contains(&lost), "lost {lost} of 1000 at p=0.5");
    }

    #[test]
    fn identical_seeds_replay_identical_traces() {
        let run = |seed| {
            let mut cfg = NetworkConfig::lan(5);
            cfg.loss = 0.1;
            let mut sim = Simulation::new(Recorder::default(), cfg, seed);
            sim.with_ctx(|_, ctx| {
                for i in 0..20u32 {
                    ctx.send(NodeId(i % 5), NodeId((i + 1) % 5), Note("x", 100));
                    ctx.set_timer(NodeId(i % 5), Duration::from_millis(u64::from(i)), "t");
                }
            });
            sim.run_until_idle();
            sim.into_protocol().log
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn bandwidth_serialization_orders_departures() {
        // 8 Mbps => 1 ms per 1000-byte message.
        let mut cfg = ideal(3);
        cfg.egress_bandwidth_bps = Some(8_000_000);
        let mut sim = Simulation::new(Recorder::default(), cfg, 1);
        sim.with_ctx(|_, ctx| {
            ctx.send(NodeId(0), NodeId(1), Note("a", 1000));
            ctx.send(NodeId(0), NodeId(2), Note("b", 1000));
        });
        sim.run_until_idle();
        let log = &sim.protocol().log;
        assert_eq!(log[0].0, Duration::from_millis(1).as_nanos());
        assert_eq!(log[1].0, Duration::from_millis(2).as_nanos());
    }

    #[test]
    fn streams_mode_is_deterministic_and_distinct_from_unified() {
        let run = |mode: RngMode| {
            let mut cfg = NetworkConfig::lan(5);
            cfg.loss = 0.1;
            let mut sim = Simulation::with_rng_mode(Recorder::default(), cfg, 7, mode);
            sim.with_ctx(|_, ctx| {
                for i in 0..40u32 {
                    ctx.send(NodeId(i % 5), NodeId((i + 1) % 5), Note("x", 100));
                }
            });
            sim.run_until_idle();
            sim.into_protocol().log
        };
        // Same mode, same seed: bit-identical replay.
        assert_eq!(run(RngMode::Unified), run(RngMode::Unified));
        assert_eq!(run(RngMode::Streams), run(RngMode::Streams));
        // Different layouts draw different values (same distributions).
        assert_ne!(run(RngMode::Unified), run(RngMode::Streams));
    }

    /// The protocol stream must be insulated from network draws: changing
    /// the physical network model must not change protocol RNG draws in
    /// stream mode (it does, by design, in unified mode).
    #[test]
    fn streams_mode_pins_protocol_draws_against_network_noise() {
        struct Draws(Vec<u64>);
        impl Protocol for Draws {
            type Msg = Note;
            type Timer = ();
            fn on_message(&mut self, ctx: &mut Ctx<'_, Note, ()>, _: NodeId, _: NodeId, _: Note) {
                self.0.push(rand::RngExt::random::<u64>(ctx.rng()));
            }
            fn on_timer(&mut self, _: &mut Ctx<'_, Note, ()>, _: NodeId, _: ()) {}
        }
        let run = |latency_jitter: u64| {
            let mut cfg = NetworkConfig::lan(3);
            cfg.latency = crate::net::LatencyModel::Lan {
                base: Duration::from_micros(100),
                jitter: Duration::from_micros(latency_jitter),
                spike_prob: 0.01,
                spike_mult: 4,
            };
            let mut sim = Simulation::with_rng_mode(Draws(Vec::new()), cfg, 3, RngMode::Streams);
            sim.with_ctx(|_, ctx| {
                for i in 0..20u32 {
                    ctx.send(NodeId(i % 3), NodeId((i + 1) % 3), Note("x", 64));
                }
            });
            sim.run_until_idle();
            sim.into_protocol().0
        };
        // Different latency models consume different latency-stream draws,
        // but the protocol stream sees the identical sequence.
        assert_eq!(run(200), run(900));
    }

    #[test]
    fn trace_records_time_seq_event_triples() {
        let mut sim = Simulation::new(Recorder::default(), ideal(2), 1);
        sim.set_trace(true);
        sim.with_ctx(|_, ctx| {
            ctx.send(NodeId(0), NodeId(1), Note("x", 8));
            ctx.set_timer(NodeId(0), Duration::from_secs(1), "t");
        });
        sim.run_until_idle();
        let trace = sim.take_trace();
        assert_eq!(trace.len(), 2);
        assert!(trace[0].what.contains("deliver n0->n1"));
        assert!(trace[1].what.contains("timer @n0"));
        assert!(trace[0].at <= trace[1].at);
        // Draining leaves an empty, still-armed trace.
        assert!(sim.take_trace().is_empty());
    }

    #[test]
    fn events_processed_counts_work() {
        let mut sim = Simulation::new(Recorder::default(), ideal(2), 1);
        sim.with_ctx(|_, ctx| {
            ctx.send(NodeId(0), NodeId(1), Note("x", 1));
            ctx.set_timer(NodeId(0), Duration::from_secs(1), "t");
        });
        sim.run_until_idle();
        assert_eq!(sim.events_processed(), 2);
    }
}
