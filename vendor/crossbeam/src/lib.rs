//! Offline stand-in for the `crossbeam` crate.
//!
//! Only the channel API this workspace uses is provided, implemented
//! directly on `std::sync::mpsc` (whose `Sender` is `Clone` and whose
//! `Receiver` supports `recv_timeout`, which is all the threaded gossip
//! runtime needs).

#![warn(missing_docs)]

/// Multi-producer channels.
pub mod channel {
    pub use std::sync::mpsc::{Receiver, RecvTimeoutError, SendError, Sender};

    /// Creates an unbounded MPSC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        std::sync::mpsc::channel()
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{unbounded, RecvTimeoutError};
    use std::time::Duration;

    #[test]
    fn send_recv_round_trip() {
        let (tx, rx) = unbounded();
        let tx2 = tx.clone();
        tx.send(1).unwrap();
        tx2.send(2).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(1));
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(2));
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(1)),
            Err(RecvTimeoutError::Timeout)
        );
        drop(tx);
        drop(tx2);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(1)),
            Err(RecvTimeoutError::Disconnected)
        );
    }
}
