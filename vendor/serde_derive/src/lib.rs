//! No-op `Serialize` / `Deserialize` derives.
//!
//! Nothing in this workspace serializes at runtime — the derives only have
//! to exist so the `#[derive(Serialize, Deserialize)]` annotations compile.
//! Emitting an empty token stream implements nothing and costs nothing.

use proc_macro::TokenStream;

/// No-op `Serialize` derive.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
