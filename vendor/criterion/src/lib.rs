//! Offline stand-in for the `criterion` benchmarking crate.
//!
//! Implements the subset the workspace's benches use — `Criterion`,
//! benchmark groups with `sample_size`, `bench_function`, `Bencher::iter`
//! and the `criterion_group!`/`criterion_main!` macros — with plain
//! wall-clock timing: each benchmark runs one warm-up iteration plus
//! `sample_size` timed iterations and prints min/mean/max per iteration.
//! No statistics engine, no HTML reports; enough to compare runs and feed
//! the repo's perf-trajectory emitter.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Default timed iterations per benchmark.
const DEFAULT_SAMPLE_SIZE: usize = 10;

/// The benchmark driver handed to `criterion_group!` targets.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: DEFAULT_SAMPLE_SIZE,
        }
    }
}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(name, self.sample_size, f);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_owned(),
            sample_size: self.sample_size,
            _criterion: self,
        }
    }
}

/// A named group of benchmarks sharing a sample size.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one named benchmark within the group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&format!("{}/{}", self.name, name), self.sample_size, f);
        self
    }

    /// Ends the group (kept for API compatibility; nothing to flush).
    pub fn finish(self) {}
}

/// Handle through which a benchmark body is timed.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times one execution of `f` and records it as a sample.
    pub fn iter<O, F>(&mut self, mut f: F)
    where
        F: FnMut() -> O,
    {
        let start = Instant::now();
        std::hint::black_box(f());
        self.samples.push(start.elapsed());
    }
}

fn run_bench<F>(name: &str, sample_size: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    // Warm-up pass (not recorded).
    let mut warmup = Bencher::default();
    f(&mut warmup);

    let mut bencher = Bencher::default();
    for _ in 0..sample_size {
        f(&mut bencher);
    }
    let samples = &bencher.samples;
    if samples.is_empty() {
        println!("bench {name:<40} (no samples)");
        return;
    }
    let min = samples.iter().min().copied().unwrap_or_default();
    let max = samples.iter().max().copied().unwrap_or_default();
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    println!(
        "bench {name:<40} mean {mean:>12?}  min {min:>12?}  max {max:>12?}  ({} samples)",
        samples.len()
    );
}

/// Declares a group function running each benchmark target in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group
            .sample_size(3)
            .bench_function("noop", |b| b.iter(|| 1 + 1));
        group.finish();
        c.bench_function("standalone", |b| b.iter(|| ()));
    }
}
