//! Offline, dependency-free stand-in for the `rand` crate.
//!
//! Implements the subset of the rand 0.9 API this workspace uses:
//! [`rngs::StdRng`] (a xoshiro256++ generator), [`SeedableRng`] with
//! `seed_from_u64`, and the [`RngExt`] extension trait providing
//! `random::<T>()` and `random_range(..)`. Everything is deterministic: a
//! given seed always produces the same stream, which is the property the
//! simulation kernel's replay guarantee rests on.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Sources of raw randomness: a stream of `u64` words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Generators that can be constructed from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generator types.
pub mod rngs {
    /// The standard deterministic generator: xoshiro256++ seeded through
    /// SplitMix64. Not cryptographically secure — statistically solid and
    /// fast, which is what a simulation needs.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl crate::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            StdRng { s }
        }
    }

    impl crate::RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ (Blackman & Vigna, 2019).
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Types that can be drawn uniformly from the generator's raw stream.
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for u16 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 48) as u16
    }
}

impl Standard for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits -> [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges a uniform value can be drawn from.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),+) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let width = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % width) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let width = (end - start) as u64;
                if width == u64::MAX {
                    return start + rng.next_u64() as $t;
                }
                start + (rng.next_u64() % (width + 1)) as $t
            }
        }
    )+};
}

impl_int_range!(u8, u16, u32, u64, usize);

macro_rules! impl_float_range {
    ($($t:ty),+) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let unit: $t = Standard::sample(rng);
                self.start + unit * (self.end - self.start)
            }
        }
    )+};
}

impl_float_range!(f32, f64);

/// Convenience methods every generator gets for free.
pub trait RngExt: RngCore {
    /// Draws a value of `T` uniformly from its natural domain
    /// (`[0, 1)` for floats, the full range for integers).
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.random::<u64>(), c.random::<u64>());
    }

    #[test]
    fn float_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let a = rng.random_range(3usize..17);
            assert!((3..17).contains(&a));
            let b = rng.random_range(5u64..=9);
            assert!((5..=9).contains(&b));
            let c = rng.random_range(-0.0f64..2.5);
            assert!((0.0..2.5).contains(&c));
        }
    }

    #[test]
    fn rough_uniformity() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[rng.random_range(0usize..10)] += 1;
        }
        for c in counts {
            assert!((9_000..11_000).contains(&c), "bucket count {c}");
        }
    }
}
