//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset this workspace's property tests use: the
//! [`proptest!`] macro, range / tuple / [`collection::vec`] /
//! [`sample::subsequence`] strategies, [`any`], and the `prop_assert*` /
//! `prop_assume!` macros. Each test runs a fixed number of deterministic
//! cases; the RNG is seeded from the test's name, so failures replay
//! exactly and CI runs are stable. No shrinking — a failing case reports
//! its case index instead.

#![warn(missing_docs)]

use std::marker::PhantomData;
use std::ops::Range;

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Number of generated cases per property test.
pub const NUM_CASES: u32 = 64;

/// The deterministic RNG driving strategy generation.
#[derive(Debug, Clone)]
pub struct TestRng(StdRng);

impl TestRng {
    /// Builds the RNG for a named test; the name pins the case stream.
    pub fn for_test(name: &str) -> Self {
        // FNV-1a over the test name: stable across runs and platforms.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng(StdRng::seed_from_u64(h))
    }

    fn rng(&mut self) -> &mut StdRng {
        &mut self.0
    }
}

/// Something that can generate values for a property test.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng().random_range(self.clone())
            }
        }
    )+};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng().random_range(self.clone())
            }
        }
    )+};
}

impl_float_range_strategy!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+)),+ $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy!((A, B), (A, B, C), (A, B, C, D));

/// Types with a canonical "anything goes" strategy.
pub trait Arbitrary: Sized {
    /// Generates one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),+) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.rng().random::<$t>()
            }
        }
    )+};
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize, bool);

/// Strategy wrapper produced by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::RngExt;
    use std::ops::Range;

    /// Strategy for vectors whose elements come from `element` and whose
    /// length is drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Builds a [`VecStrategy`].
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = {
                let r = self.size.clone();
                super::rng_of(rng).random_range(r)
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Sampling strategies.
pub mod sample {
    use super::{Strategy, TestRng};
    use rand::RngExt;
    use std::ops::Range;

    /// Strategy producing order-preserving random subsequences of `values`.
    #[derive(Debug, Clone)]
    pub struct Subsequence<T> {
        values: Vec<T>,
        size: Range<usize>,
    }

    /// Builds a [`Subsequence`] whose length falls in `size` (clamped to
    /// the number of available values).
    pub fn subsequence<T: Clone>(values: Vec<T>, size: Range<usize>) -> Subsequence<T> {
        assert!(size.start < size.end, "empty size range");
        Subsequence { values, size }
    }

    impl<T: Clone> Strategy for Subsequence<T> {
        type Value = Vec<T>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.values.len();
            let lo = self.size.start.min(n);
            let hi = self.size.end.min(n + 1);
            let r = super::rng_of(rng);
            let len = if lo + 1 >= hi {
                lo
            } else {
                r.random_range(lo..hi)
            };
            // Partial Fisher–Yates over the index space, then restore the
            // original order: a uniform order-preserving subsequence.
            let mut idx: Vec<usize> = (0..n).collect();
            for i in 0..len {
                let j = r.random_range(i..n);
                idx.swap(i, j);
            }
            idx.truncate(len);
            idx.sort_unstable();
            idx.into_iter().map(|i| self.values[i].clone()).collect()
        }
    }
}

#[doc(hidden)]
pub fn rng_of(rng: &mut TestRng) -> &mut StdRng {
    rng.rng()
}

/// Everything a property test needs in scope.
pub mod prelude {
    pub use crate::{any, Arbitrary, Strategy, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Declares property tests: each `pattern in strategy` argument is drawn
/// fresh per case and the body runs [`NUM_CASES`] times.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut __rng = $crate::TestRng::for_test(stringify!($name));
                for __case in 0..$crate::NUM_CASES {
                    $(let $pat = $crate::Strategy::generate(&($strat), &mut __rng);)+
                    let __outcome: ::std::result::Result<(), ::std::string::String> = (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(message) = __outcome {
                        panic!("proptest {} failed at case {}: {}", stringify!($name), __case, message);
                    }
                }
            }
        )+
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err(format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    };
}

/// Fails the current case unless the operands compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err(format!(
                "assertion failed: `{}` == `{}`\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), l, r
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+), l, r
            ));
        }
    }};
}

/// Fails the current case if the operands compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return ::std::result::Result::Err(format!(
                "assertion failed: `{}` != `{}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                l
            ));
        }
    }};
}

/// Skips the current case (counts as a pass) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 10u32..20, y in 0.0f64..1.0) {
            prop_assert!((10..20).contains(&x));
            prop_assert!((0.0..1.0).contains(&y), "y = {y}");
        }

        #[test]
        fn vec_respects_size(v in crate::collection::vec(any::<u8>(), 3..7)) {
            prop_assert!((3..7).contains(&v.len()));
        }

        #[test]
        fn subsequence_preserves_order(s in crate::sample::subsequence((0u64..50).collect::<Vec<_>>(), 1..49)) {
            prop_assert!(!s.is_empty());
            prop_assert!(s.windows(2).all(|w| w[0] < w[1]));
        }

        #[test]
        fn tuples_compose(t in (0u32..4, 0u32..4, 0u16..100)) {
            prop_assert!(t.0 < 4 && t.1 < 4 && t.2 < 100);
        }
    }

    #[test]
    fn deterministic_across_instances() {
        let mut a = TestRng::for_test("x");
        let mut b = TestRng::for_test("x");
        let s = 0u64..1000;
        for _ in 0..32 {
            assert_eq!(s.generate(&mut a), s.generate(&mut b));
        }
    }
}
