//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset this workspace's property tests use: the
//! [`proptest!`] macro, range / tuple / [`collection::vec`] /
//! [`sample::subsequence`] strategies, [`any`], and the `prop_assert*` /
//! `prop_assume!` macros. Each test runs a fixed number of deterministic
//! cases; the RNG is seeded from the test's name, so failures replay
//! exactly and CI runs are stable.
//!
//! Failing cases **shrink**: every strategy can propose simpler variants
//! of a failing value ([`Strategy::shrink`]) — integers walk toward the
//! range start, vectors drop chunks and elements, tuples simplify one
//! component at a time — and the runner greedily re-runs candidates
//! (bounded by [`MAX_SHRINK_EVALS`]) until no candidate still fails. The
//! panic reports the minimal failing value alongside the original one.

#![warn(missing_docs)]

use std::marker::PhantomData;
use std::ops::Range;

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Number of generated cases per property test.
pub const NUM_CASES: u32 = 64;

/// Upper bound on candidate evaluations during one shrink search: value-
/// level shrinking re-runs the (possibly expensive) test body per
/// candidate, so the search is budgeted rather than exhaustive.
pub const MAX_SHRINK_EVALS: u32 = 256;

/// The deterministic RNG driving strategy generation.
#[derive(Debug, Clone)]
pub struct TestRng(StdRng);

impl TestRng {
    /// Builds the RNG for a named test; the name pins the case stream.
    pub fn for_test(name: &str) -> Self {
        // FNV-1a over the test name: stable across runs and platforms.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng(StdRng::seed_from_u64(h))
    }

    fn rng(&mut self) -> &mut StdRng {
        &mut self.0
    }
}

/// Something that can generate values for a property test.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Proposes strictly simpler variants of a failing `value`, simplest
    /// first. An empty vector means the value is fully shrunk. Candidates
    /// must stay inside the strategy's own domain (a range strategy never
    /// proposes out-of-range integers, a vec strategy never goes below
    /// its minimum length).
    fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
        let _ = value;
        Vec::new()
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng().random_range(self.clone())
            }
            fn shrink(&self, value: &$t) -> Vec<$t> {
                let v = *value;
                let lo = self.start;
                if v <= lo {
                    return Vec::new();
                }
                let mut out = Vec::new();
                // Simplest first: the range start, then the midpoint
                // (bisection), then one step down (completeness).
                out.push(lo);
                let mid = lo + (v - lo) / 2;
                if mid != lo && mid != v {
                    out.push(mid);
                }
                let down = v - 1;
                if down != lo && down != mid {
                    out.push(down);
                }
                out
            }
        }
    )+};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng().random_range(self.clone())
            }
            fn shrink(&self, value: &$t) -> Vec<$t> {
                // One bisection step per round toward the range start;
                // stop once the step is negligible.
                let v = *value;
                let lo = self.start;
                if v <= lo {
                    return Vec::new();
                }
                let mut out = vec![lo];
                let mid = lo + (v - lo) / 2.0;
                if mid > lo && mid < v {
                    out.push(mid);
                }
                out
            }
        }
    )+};
}

impl_float_range_strategy!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident . $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+)
        where
            $($name::Value: Clone,)+
        {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
            fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                let mut out = Vec::new();
                // Shrink one component at a time, holding the rest fixed.
                $(
                    for candidate in self.$idx.shrink(&value.$idx) {
                        let mut next = value.clone();
                        next.$idx = candidate;
                        out.push(next);
                    }
                )+
                out
            }
        }
    )+};
}

impl_tuple_strategy!((A.0), (A.0, B.1), (A.0, B.1, C.2), (A.0, B.1, C.2, D.3),);

/// Types with a canonical "anything goes" strategy.
pub trait Arbitrary: Sized {
    /// Generates one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;

    /// Proposes simpler variants of `value` (see [`Strategy::shrink`]).
    fn shrink_value(value: &Self) -> Vec<Self> {
        let _ = value;
        Vec::new()
    }
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),+) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.rng().random::<$t>()
            }
            fn shrink_value(value: &Self) -> Vec<Self> {
                let v = *value;
                if v == 0 {
                    return Vec::new();
                }
                let mut out = vec![0, v / 2];
                out.dedup();
                out
            }
        }
    )+};
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.rng().random::<bool>()
    }
    fn shrink_value(value: &Self) -> Vec<Self> {
        if *value {
            vec![false]
        } else {
            Vec::new()
        }
    }
}

/// Strategy wrapper produced by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
    fn shrink(&self, value: &T) -> Vec<T> {
        T::shrink_value(value)
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::RngExt;
    use std::ops::Range;

    /// Strategy for vectors whose elements come from `element` and whose
    /// length is drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Builds a [`VecStrategy`].
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Clone,
    {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = {
                let r = self.size.clone();
                super::rng_of(rng).random_range(r)
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
        fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
            let min = self.size.start;
            let mut out = Vec::new();
            // Structural shrinks first (shorter is simpler): drop the
            // whole tail, drop either half, drop single elements.
            if value.len() > min {
                out.push(value[..min].to_vec());
                let half = min.max(value.len() / 2);
                if half < value.len() && half > min {
                    out.push(value[..half].to_vec());
                    out.push(value[value.len() - half..].to_vec());
                }
                if value.len() > min {
                    for i in 0..value.len() {
                        let mut shorter = value.clone();
                        shorter.remove(i);
                        out.push(shorter);
                    }
                }
            }
            // Then element-wise shrinks, length preserved.
            for (i, v) in value.iter().enumerate() {
                for candidate in self.element.shrink(v) {
                    let mut next = value.clone();
                    next[i] = candidate;
                    out.push(next);
                }
            }
            out
        }
    }
}

/// Sampling strategies.
pub mod sample {
    use super::{Strategy, TestRng};
    use rand::RngExt;
    use std::ops::Range;

    /// Strategy producing order-preserving random subsequences of `values`.
    #[derive(Debug, Clone)]
    pub struct Subsequence<T> {
        values: Vec<T>,
        size: Range<usize>,
    }

    /// Builds a [`Subsequence`] whose length falls in `size` (clamped to
    /// the number of available values).
    pub fn subsequence<T: Clone>(values: Vec<T>, size: Range<usize>) -> Subsequence<T> {
        assert!(size.start < size.end, "empty size range");
        Subsequence { values, size }
    }

    impl<T: Clone> Strategy for Subsequence<T> {
        type Value = Vec<T>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.values.len();
            let lo = self.size.start.min(n);
            let hi = self.size.end.min(n + 1);
            let r = super::rng_of(rng);
            let len = if lo + 1 >= hi {
                lo
            } else {
                r.random_range(lo..hi)
            };
            // Partial Fisher–Yates over the index space, then restore the
            // original order: a uniform order-preserving subsequence.
            let mut idx: Vec<usize> = (0..n).collect();
            for i in 0..len {
                let j = r.random_range(i..n);
                idx.swap(i, j);
            }
            idx.truncate(len);
            idx.sort_unstable();
            idx.into_iter().map(|i| self.values[i].clone()).collect()
        }
        fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
            // Dropping elements keeps it a valid subsequence; elements
            // themselves never change (they come from the fixed pool).
            let min = self.size.start.min(self.values.len());
            if value.len() <= min {
                return Vec::new();
            }
            let mut out = vec![value[..min].to_vec()];
            for i in 0..value.len() {
                let mut shorter = value.clone();
                shorter.remove(i);
                if shorter.len() >= min {
                    out.push(shorter);
                }
            }
            out
        }
    }
}

#[doc(hidden)]
pub fn rng_of(rng: &mut TestRng) -> &mut StdRng {
    rng.rng()
}

#[doc(hidden)]
pub mod runner {
    //! The case loop behind [`crate::proptest!`]: generate, run, and on
    //! failure greedily shrink within the [`crate::MAX_SHRINK_EVALS`]
    //! budget.

    use super::{Strategy, TestRng, MAX_SHRINK_EVALS, NUM_CASES};

    /// Runs `body` over [`NUM_CASES`] generated values, shrinking the
    /// first failure to a local minimum before panicking.
    pub fn run<S, F>(name: &str, strategy: &S, mut body: F)
    where
        S: Strategy,
        S::Value: Clone + std::fmt::Debug,
        F: FnMut(&S::Value) -> Result<(), String>,
    {
        let mut rng = TestRng::for_test(name);
        for case in 0..NUM_CASES {
            let value = strategy.generate(&mut rng);
            if let Err(message) = body(&value) {
                let (minimal, final_message, evals) =
                    shrink_failure(strategy, value.clone(), message.clone(), &mut body);
                panic!(
                    "proptest {name} failed at case {case}: {message}\n\
                     original input: {value:?}\n\
                     shrunk input ({evals} candidate runs): {minimal:?}\n\
                     shrunk failure: {final_message}"
                );
            }
        }
    }

    /// Greedy descent: take the first shrink candidate that still fails,
    /// restart from it, stop when no candidate fails or the budget runs
    /// out. Returns the minimal failing value, its failure message and
    /// the number of candidate evaluations spent.
    fn shrink_failure<S, F>(
        strategy: &S,
        mut current: S::Value,
        mut message: String,
        body: &mut F,
    ) -> (S::Value, String, u32)
    where
        S: Strategy,
        S::Value: Clone,
        F: FnMut(&S::Value) -> Result<(), String>,
    {
        let mut evals = 0u32;
        'outer: loop {
            for candidate in strategy.shrink(&current) {
                if evals >= MAX_SHRINK_EVALS {
                    break 'outer;
                }
                evals += 1;
                if let Err(m) = body(&candidate) {
                    current = candidate;
                    message = m;
                    continue 'outer;
                }
            }
            break;
        }
        (current, message, evals)
    }
}

/// Everything a property test needs in scope.
pub mod prelude {
    pub use crate::{any, Arbitrary, Strategy, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Declares property tests: each `pattern in strategy` argument is drawn
/// fresh per case and the body runs [`NUM_CASES`] times. A failing case
/// is shrunk (see [`Strategy::shrink`]) before the panic reports it.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __strategy = ($($strat,)+);
                $crate::runner::run(stringify!($name), &__strategy, |__value| {
                    let ($($pat,)+) = ::std::clone::Clone::clone(__value);
                    $body
                    #[allow(unreachable_code)]
                    ::std::result::Result::Ok(())
                });
            }
        )+
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err(format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    };
}

/// Fails the current case unless the operands compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err(format!(
                "assertion failed: `{}` == `{}`\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), l, r
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+), l, r
            ));
        }
    }};
}

/// Fails the current case if the operands compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return ::std::result::Result::Err(format!(
                "assertion failed: `{}` != `{}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                l
            ));
        }
    }};
}

/// Skips the current case (counts as a pass) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 10u32..20, y in 0.0f64..1.0) {
            prop_assert!((10..20).contains(&x));
            prop_assert!((0.0..1.0).contains(&y), "y = {y}");
        }

        #[test]
        fn vec_respects_size(v in crate::collection::vec(any::<u8>(), 3..7)) {
            prop_assert!((3..7).contains(&v.len()));
        }

        #[test]
        fn subsequence_preserves_order(s in crate::sample::subsequence((0u64..50).collect::<Vec<_>>(), 1..49)) {
            prop_assert!(!s.is_empty());
            prop_assert!(s.windows(2).all(|w| w[0] < w[1]));
        }

        #[test]
        fn tuples_compose(t in (0u32..4, 0u32..4, 0u16..100)) {
            prop_assert!(t.0 < 4 && t.1 < 4 && t.2 < 100);
        }
    }

    #[test]
    fn deterministic_across_instances() {
        let mut a = TestRng::for_test("x");
        let mut b = TestRng::for_test("x");
        let s = 0u64..1000;
        for _ in 0..32 {
            assert_eq!(s.generate(&mut a), s.generate(&mut b));
        }
    }

    #[test]
    fn int_range_shrinks_toward_start() {
        let s = 10u32..100;
        let candidates = s.shrink(&40);
        assert!(candidates.contains(&10), "range start is always proposed");
        assert!(candidates.iter().all(|c| (10..40).contains(c)));
        assert!(s.shrink(&10).is_empty(), "the start is fully shrunk");
    }

    #[test]
    fn vec_shrinks_remove_and_simplify_elements() {
        let s = crate::collection::vec(0u8..10, 1..6);
        let candidates = s.shrink(&vec![5, 7, 3]);
        assert!(
            candidates.iter().any(|c| c.len() < 3),
            "structural shrinks propose shorter vectors"
        );
        assert!(
            candidates.iter().any(|c| c.len() == 3 && c[0] == 0),
            "element shrinks simplify in place"
        );
        assert!(candidates.iter().all(|c| !c.is_empty()), "min length holds");
    }

    #[test]
    fn tuple_shrinks_one_component_at_a_time() {
        let s = (0u32..10, 0u32..10);
        for (a, b) in s.shrink(&(4, 6)) {
            assert!((a, b) != (4, 6));
            assert!(a == 4 || b == 6, "only one component moves per candidate");
        }
    }

    #[test]
    fn failing_case_is_shrunk_to_the_boundary() {
        // The property "x < 25" fails for x in [25, 100); greedy shrinking
        // must land exactly on the boundary value 25.
        let strategy = (0u32..100,);
        let mut first_failure = None;
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            crate::runner::run(
                "failing_case_is_shrunk_to_the_boundary",
                &strategy,
                |(x,)| {
                    if *x >= 25 {
                        if first_failure.is_none() {
                            first_failure = Some(*x);
                        }
                        Err(format!("x = {x} too big"))
                    } else {
                        Ok(())
                    }
                },
            );
        }));
        let panic = outcome.expect_err("the property must fail");
        let text = panic.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(
            text.contains("shrunk input") && text.contains("(25,)"),
            "panic must report the minimal failing value: {text}"
        );
    }
}
