//! Offline stand-in for `serde`: re-exports the no-op derive macros.
//!
//! The workspace only uses `#[derive(Serialize, Deserialize)]` as forward
//! compatibility annotations; no code path serializes at runtime.

#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};
