//! # fair-gossip — Fair and Efficient Gossip in Hyperledger Fabric
//!
//! Umbrella crate for the reproduction of Berendea, Mercier, Onica and
//! Rivière, *"Fair and Efficient Gossip in Hyperledger Fabric"* (IEEE ICDCS
//! 2020). It re-exports the workspace crates under stable module names:
//!
//! * [`sim`] — deterministic discrete-event simulation kernel;
//! * [`types`] — Fabric data model (blocks, transactions, identities);
//! * [`ledger`] — versioned state DB, validation, chaincodes;
//! * [`orderer`] — block cutter and ordering-service model;
//! * [`gossip`] — the paper's contribution: original and enhanced gossip;
//! * [`analysis`] — the paper's appendix, executable (p_e, TTL tables);
//! * [`metrics`] — latency/bandwidth/conflict measurement;
//! * [`workload`] — clients and the paper's two workloads;
//! * [`experiments`] — per-figure/per-table experiment presets and runners.
//!
//! See `README.md` for a quickstart and `EXPERIMENTS.md` for the paper-vs-
//! measured record of every table and figure.

pub use desim as sim;
pub use fabric_experiments as experiments;
pub use fabric_gossip as gossip;
pub use fabric_ledger as ledger;
pub use fabric_orderer as orderer;
pub use fabric_types as types;
pub use fabric_workload as workload;
pub use gossip_analysis as analysis;
pub use gossip_metrics as metrics;
