//! Quickstart: disseminate blocks through a 100-peer organization with the
//! paper's enhanced gossip and print what happened.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use fair_gossip::experiments::dissemination::{run_dissemination, DisseminationConfig};

fn main() {
    // The Figs. 7/8/9 configuration (enhanced gossip, fout = 4, TTL = 9),
    // scaled down to 20 blocks so the example finishes in about a second.
    let config = DisseminationConfig::fig07_09_enhanced_f4().scaled(1_000);
    println!(
        "Disseminating {} transactions (~{} blocks of ~160 KB) through {} peers...",
        config.workload.total_txs,
        config.workload.total_txs / 50,
        config.peers,
    );

    let result = run_dissemination(&config);
    let pooled = result.pooled_cdf();

    println!("blocks cut:            {}", result.blocks);
    println!(
        "deliveries recorded:   {:.1}% of (block, peer) pairs",
        result.completeness * 100.0
    );
    println!("median latency:        {}", pooled.quantile(0.5));
    println!("p99 latency:           {}", pooled.quantile(0.99));
    println!("worst latency:         {}", pooled.max());
    println!("peer traffic:          {:.1} MB", result.peer_traffic_mb);

    println!("\nmessage mix:");
    for (kind, stats) in &result.kinds {
        println!(
            "  {kind:<18} {:>8} msgs {:>12} bytes",
            stats.count, stats.bytes
        );
    }

    let ex = result
        .block_extremes
        .as_ref()
        .expect("blocks were disseminated");
    println!(
        "\nslowest block (#{}) reached the last peer after {}",
        ex.slowest.0,
        ex.slowest.1.max(),
    );
}
