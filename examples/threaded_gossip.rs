//! The same gossip state machine on real OS threads: 32 peers connected by
//! channels, wall-clock timers, enhanced dissemination.
//!
//! ```text
//! cargo run --release --example threaded_gossip
//! ```

use fair_gossip::types::block::BlockRef;
use std::time::{Duration as StdDuration, Instant};

use fair_gossip::gossip::config::GossipConfig;
use fair_gossip::gossip::runtime::ThreadedNet;
use fair_gossip::types::block::Block;

fn main() {
    const PEERS: usize = 32;
    const BLOCKS: u64 = 20;

    println!("spawning {PEERS} peer threads (enhanced gossip, fout=4, TTL=9)...");
    let net = ThreadedNet::spawn(PEERS, GossipConfig::enhanced_f4(), 2024);

    // Feed a chain of blocks to the leader, one every 20 ms, like an
    // ordering service with a 20 ms block period would.
    let mut prev = Block::genesis().hash();
    let started = Instant::now();
    for n in 1..=BLOCKS {
        let block = Block::new(n, prev, vec![]).with_padding(160_000);
        prev = block.hash();
        net.inject_block(BlockRef::new(block));
        std::thread::sleep(StdDuration::from_millis(20));
    }

    // Give the swarm a moment to drain, then collect every thread's state.
    std::thread::sleep(StdDuration::from_millis(400));
    let outcomes = net.shutdown();
    let elapsed = started.elapsed();

    let complete = outcomes
        .iter()
        .filter(|o| o.delivered.len() as u64 == BLOCKS)
        .count();
    let total_blocks_sent: u64 = outcomes.iter().map(|o| o.peer.stats().blocks_sent).sum();
    let total_digests: u64 = outcomes.iter().map(|o| o.peer.stats().digests_sent).sum();

    println!("elapsed:                    {elapsed:?}");
    println!("peers with all {BLOCKS} blocks:   {complete}/{PEERS}");
    println!(
        "full-block transmissions:   {total_blocks_sent} ({:.2} per block per peer)",
        total_blocks_sent as f64 / (BLOCKS as f64 * PEERS as f64)
    );
    println!("push digests sent:          {total_digests}");

    for o in &outcomes {
        assert_eq!(
            o.delivered,
            (1..=BLOCKS).collect::<Vec<_>>(),
            "peer {} must deliver the whole chain in order",
            o.peer.id(),
        );
    }
    println!("every peer delivered blocks 1..={BLOCKS} in order ✓");
}
