//! Side-by-side comparison of the original Fabric gossip and the paper's
//! enhanced protocol on the same workload — the headline result of the
//! paper in one run.
//!
//! ```text
//! cargo run --release --example compare_gossip [blocks]
//! ```

use fair_gossip::experiments::dissemination::{
    run_dissemination, DisseminationConfig, DisseminationResult,
};
use fair_gossip::metrics::table::render_table;

fn run(label: &str, config: DisseminationConfig) -> (String, DisseminationResult) {
    println!("running {label}...");
    let result = run_dissemination(&config);
    (label.to_owned(), result)
}

fn main() {
    let blocks: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(60);
    let txs = blocks * 50;

    let runs = vec![
        run(
            "original (fout=3, pull 4s)",
            DisseminationConfig::fig04_06_original().scaled(txs),
        ),
        run(
            "enhanced (fout=4, TTL=9)",
            DisseminationConfig::fig07_09_enhanced_f4().scaled(txs),
        ),
        run(
            "enhanced (fout=2, TTL=19)",
            DisseminationConfig::fig12_14_enhanced_f2().scaled(txs),
        ),
    ];

    let mut rows = Vec::new();
    for (label, result) in &runs {
        let pooled = result.pooled_cdf();
        rows.push(vec![
            label.clone(),
            format!("{}", pooled.quantile(0.5)),
            format!("{}", pooled.quantile(0.95)),
            format!("{}", pooled.quantile(0.999)),
            format!("{}", pooled.max()),
            format!("{:.1}", result.peer_traffic_mb),
            format!(
                "{:.3}",
                result
                    .bandwidth
                    .regular
                    .average(Some(result.bandwidth.active_buckets))
            ),
        ]);
    }
    println!();
    println!(
        "{}",
        render_table(
            &[
                "configuration",
                "p50",
                "p95",
                "p99.9",
                "max",
                "peer MB",
                "regular MB/s"
            ],
            &rows,
        )
    );

    let orig = &runs[0].1;
    let enh = &runs[1].1;
    let tail_speedup = orig.pooled_cdf().quantile(0.999).as_secs_f64()
        / enh.pooled_cdf().quantile(0.999).as_secs_f64();
    let traffic_saving = 100.0 * (1.0 - enh.peer_traffic_mb / orig.peer_traffic_mb);
    let bw_saving = 100.0
        * (1.0
            - enh
                .bandwidth
                .regular
                .average(Some(enh.bandwidth.active_buckets))
                / orig
                    .bandwidth
                    .regular
                    .average(Some(orig.bandwidth.active_buckets)));
    println!("tail (p99.9) speedup enhanced vs original: {tail_speedup:.1}x  (paper: >10x)");
    println!("dissemination traffic saving:              {traffic_saving:.0}%");
    println!("regular-peer bandwidth saving (with background): {bw_saving:.0}%  (paper: >40%)");
}
