//! TTL planning from the paper's appendix: given an organization size and
//! a tolerable miss probability, what fan-out/TTL should peers deploy, and
//! what does each choice cost?
//!
//! ```text
//! cargo run --release --example ttl_planner [n] [target_pe]
//! ```

use fair_gossip::analysis::coverage::infect_and_die_expected_coverage;
use fair_gossip::analysis::epidemic::{
    carrying_capacity, expected_digests, imperfect_dissemination_probability,
};
use fair_gossip::analysis::ttl::{ttl_for, TtlTable};
use fair_gossip::metrics::table::render_table;

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(100);
    let target: f64 = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1e-6);

    println!("TTL planning for n = {n} peers, target miss probability {target:.0e}\n");

    let mut rows = Vec::new();
    for fout in [2usize, 3, 4, 5, 6, 8] {
        let ttl = ttl_for(n, fout, target);
        let pe = imperfect_dissemination_probability(n as f64, fout as f64, ttl);
        let digests = expected_digests(n as f64, fout as f64, ttl);
        rows.push(vec![
            fout.to_string(),
            ttl.to_string(),
            format!("{pe:.2e}"),
            format!("{digests:.0}"),
            format!(
                "{:.1}%",
                100.0 * carrying_capacity(n as f64, fout as f64) / n as f64
            ),
        ]);
    }
    println!(
        "{}",
        render_table(
            &["fout", "TTL", "p_e", "digests/block", "push-only coverage"],
            &rows
        )
    );

    println!(
        "for contrast, stock Fabric's infect-and-die push (fout = 3) stops at \
         {:.1} of {n} peers on average,\nleaving the rest to the 4-second pull — \
         the tail the paper eliminates.\n",
        infect_and_die_expected_coverage(n as f64, 3.0),
    );

    // The deployable artifact: a lookup table covering one order of
    // magnitude around n, as the paper suggests shipping to peers.
    let table = TtlTable::build(4, target, TtlTable::default_grid());
    println!("lookup table for fout = 4 (peers use the lowest upper bound on n):");
    for (max_n, ttl) in table.entries() {
        println!("  n <= {max_n:>6} -> TTL {ttl}");
    }
    if let Some(ttl) = table.lookup(n) {
        println!("\na peer estimating n = {n} would deploy TTL = {ttl}");
    }
}
