//! Multi-channel walkthrough: C channels × N peers with overlapping
//! memberships and skewed per-channel block rates.
//!
//! ```text
//! cargo run --release --example multi_channel [channels] [peers] [blocks]
//! ```
//!
//! What it demonstrates, bottom-up:
//!
//! 1. every peer is a `GossipPeer` **multiplexer** over one `ChannelState`
//!    per joined channel (built with `with_channels` + `join_channel`);
//! 2. each channel elects its own leader and runs its own push engine —
//!    blocks never cross channel boundaries;
//! 3. per-channel latency CDFs and Jain's fairness over the per-channel
//!    byte breakdown in `PeerStats`, the view peer-global totals hide.

use fair_gossip::experiments::multichannel::{
    render_multichannel, run_multichannel, MultiChannelConfig,
};
use fair_gossip::types::ids::ChannelId;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let channels = args.first().and_then(|s| s.parse().ok()).unwrap_or(4);
    let peers = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(60);
    let blocks = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(40);

    let config = MultiChannelConfig::skewed(channels, peers, blocks);
    println!(
        "Running {channels} channels over {peers} peers (channel 0 busiest: \
         {blocks} blocks; rates decay per channel)...\n"
    );
    for (c, plan) in config.plans.iter().enumerate() {
        println!(
            "  ch{c}: {} members ({}..{}), one block per {}, {} blocks",
            plan.members.len(),
            plan.members.first().unwrap(),
            plan.members.last().unwrap(),
            plan.block_interval,
            plan.blocks,
        );
    }
    println!();

    let result = run_multichannel(&config);
    print!(
        "{}",
        render_multichannel("multi-channel dissemination", &result)
    );

    // A peer in the overlap of two channels carries both workloads; its
    // per-channel stats expose the split its global counters would hide.
    let overlap_peer = (0..peers)
        .map(|i| result.net.gossip(i))
        .find(|p| p.channel_ids().len() >= 2);
    if let Some(peer) = overlap_peer {
        println!(
            "\npeer {} serves {} channels:",
            peer.id(),
            peer.channel_ids().len()
        );
        for ch in peer.channel_ids() {
            let stats = peer.stats_on(ch).expect("joined");
            println!(
                "  {ch}: {} blocks forwarded, {} digests, {:.2} MB sent",
                stats.blocks_sent,
                stats.digests_sent,
                stats.bytes_sent() as f64 / 1e6,
            );
        }
        let total = peer.total_stats();
        println!(
            "  total: {} blocks forwarded, {:.2} MB sent (channels sum exactly)",
            total.blocks_sent,
            total.bytes_sent() as f64 / 1e6,
        );
    }

    // Isolation check, live: channel 0's store never appears on a peer
    // outside its membership.
    let outside = (0..peers)
        .map(|i| result.net.gossip(i))
        .filter(|p| !p.has_channel(ChannelId(0)))
        .count();
    println!(
        "\n{} peers never joined ch0 and hold none of its {} blocks \
         ({} simulation events over {} of virtual time)",
        outside, result.channels[0].blocks, result.events, result.sim_end,
    );
}
