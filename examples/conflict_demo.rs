//! Validation-time conflicts: how gossip latency turns into invalidated
//! transactions (a single cell of Table II, both protocols).
//!
//! ```text
//! cargo run --release --example conflict_demo [period_ms]
//! ```

use fair_gossip::experiments::conflicts::{run_conflicts, ConflictConfig};
use fair_gossip::gossip::config::GossipConfig;
use fair_gossip::sim::Duration;

fn main() {
    let period_ms: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1_000);
    let period = Duration::from_millis(period_ms);

    // 50 counters x 20 rounds = 1 000 increments at 5 tx/s (200 s of
    // traffic); the paper's full cell uses 100 x 100.
    println!("1000 increments of 50 shared counters, 5 tx/s, block period {period}...\n");

    for (label, gossip) in [
        ("original gossip", GossipConfig::original_fabric()),
        ("enhanced gossip", GossipConfig::enhanced_f4()),
    ] {
        let cfg = ConflictConfig::paper(gossip, period).scaled(50, 20);
        let result = run_conflicts(&cfg);
        println!(
            "{label:<18} issued {:>5} | blocks {:>4} (avg {:>4.1} tx) | valid {:>5} | conflicts {:>4} ({:.1}%)",
            result.issued,
            result.blocks,
            result.tx_per_block(),
            result.valid,
            result.conflicts,
            100.0 * result.conflicts as f64 / result.issued as f64,
        );
        // The invariant that makes the count trustworthy: every valid
        // increment added exactly one to some counter.
        assert_eq!(result.counter_sum, result.valid);
    }

    println!(
        "\nEvery conflict is an increment endorsed against a counter version that a \
         concurrent increment had already consumed; faster dissemination shrinks \
         that window. Invalid transactions stay in the chain but have no effect."
    );
}
