//! Runtime channel-lifecycle walkthrough: a peer joins a live channel
//! mid-run, catches up to the head, and the channel's leader later leaves,
//! forcing a hand-off — all over the full channel-routed
//! execute-order-validate pipeline.
//!
//! ```text
//! cargo run --release --example channel_churn [peers] [side_members] [blocks]
//! ```
//!
//! What it demonstrates, bottom-up:
//!
//! 1. `FabricNet` drives **two channels** end to end: every scheduled
//!    invocation names its channel, the orderer multiplexes one block
//!    cutter + chain per channel, and cut blocks go to each channel's own
//!    leader;
//! 2. a **late joiner** enters the side channel at runtime
//!    (`GossipPeer::join_channel_live`) and bootstraps to the join-time
//!    chain head through the ordinary StateInfo + recovery machinery —
//!    its catch-up latency is measured;
//! 3. the side channel's **leader leaves**; the remaining members force a
//!    re-election (`on_peer_left`), the orderer re-targets delivery, and
//!    dissemination continues;
//! 4. per-channel Jain fairness over the per-channel byte breakdown —
//!    the stable main channel doubles as the control group.

use fair_gossip::experiments::churn::{render_churn, run_churn, ChurnConfig};
use fair_gossip::types::ids::ChannelId;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let peers = args.first().and_then(|s| s.parse().ok()).unwrap_or(30);
    let side = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(12);
    let blocks = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(30);

    let config = ChurnConfig::standard(peers, side, blocks);
    println!(
        "Running {peers} peers: main channel = everyone, side channel = peers 0..{side}.\n\
         Peer {side} joins the side channel at {}, its leader (peer 0) leaves at {}.\n",
        config.join_at,
        config
            .leader_leave_at
            .map(|t| t.to_string())
            .unwrap_or_else(|| "never".into()),
    );

    let result = run_churn(&config);
    print!("{}", render_churn("channel churn", &result));

    // The joiner's view after the run: it holds the side chain gap-free
    // from its catch-up onwards.
    let joiner = &result.catchups[0];
    let height = result
        .net
        .gossip(joiner.peer.index())
        .height_on(ChannelId(1));
    println!(
        "\n{} finished at contiguous side-channel height {height} \
         (join-time head was {}).",
        joiner.peer, joiner.target
    );
    match joiner.latency() {
        Some(lat) => println!("catch-up took {lat} of virtual time."),
        None => println!("catch-up did not complete — lengthen the run."),
    }
    println!(
        "side-channel leaders at end: {:?} (hand-offs: {})",
        result.channels[1].leaders, result.channels[1].handoffs,
    );
}
