//! Discovery-protocol walkthrough: churn waves and a flash crowd with **no
//! membership oracle** — joins and leaves propagate only through gossiped
//! `AliveMsg` heartbeats and membership anti-entropy.
//!
//! ```text
//! cargo run --release --example discovery_churn [side_channels] [side_members] [blocks]
//! ```
//!
//! What it demonstrates, bottom-up:
//!
//! 1. every peer runs the `DiscoveryEngine` alongside push/pull/leadership:
//!    periodic heartbeats carry a monotonic `(incarnation, seq)` claim, an
//!    anti-entropy round push–pulls the full alive view with one random
//!    member, silent peers expire through the `believes_alive` timeout and
//!    are **reaped** (leaving an obituary that spreads, so one peer's
//!    detection becomes everyone's);
//! 2. at every wave instant, fresh peers **join** each side channel — each
//!    joiner announces *itself* (`join_channel_live` arms its discovery
//!    engine, whose first heartbeat is the join announcement) — while the
//!    sitting leader and its peers **leave silently**, so the members must
//!    detect each departure by timeout, not callback;
//! 3. leadership follows **discovery seniority** (`(incarnation, id)`): a
//!    reaped leader's successor stands up within one heartbeat period of
//!    the reap, and the leader-gap window (leave → successor claim) is
//!    measured per wave;
//! 4. discovery traffic competes with block dissemination on the same
//!    links and is counted in the same per-kind byte economy, so the
//!    closing fairness report shows the discovery share per channel.

use fair_gossip::experiments::churn_waves::{
    render_churn_waves, run_churn_waves, ChurnWavesConfig,
};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let side_channels = args.first().and_then(|s| s.parse().ok()).unwrap_or(2);
    let side_members = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(10);
    let blocks = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(60);

    let config = ChurnWavesConfig::standard(side_channels, side_members, blocks);
    println!(
        "Running {} peers: a stable main channel spanning everyone plus {side_channels} side \
         channel(s) of {side_members}.\n\
         {} waves of {} joiners/leavers per side channel starting at {}, every {};\n\
         a flash crowd of {} hits side channel 1 at {}.\n\
         Membership propagates ONLY through AliveMsg heartbeats ({} period) and\n\
         membership anti-entropy ({}); silence past {} means death.\n",
        config.peers(),
        config.waves,
        config.wave_size,
        config.first_wave_at,
        config.wave_interval,
        config.flash_crowd,
        config.flash_at,
        config.gossip.discovery.heartbeat_interval,
        config.gossip.discovery.anti_entropy_interval,
        config.gossip.membership.alive_timeout,
    );

    let result = run_churn_waves(&config);
    println!("{}", render_churn_waves("churn_waves", &result));
    println!(
        "{} events in {} of virtual time.",
        result.events, result.sim_end
    );

    // Every join and leave must have converged — the acceptance bar of the
    // discovery protocol.
    let unconverged = result
        .convergence
        .iter()
        .filter(|r| r.latency().is_none())
        .count();
    if unconverged == 0 {
        println!(
            "All {} join/leave events converged through gossip alone.",
            result.convergence.len()
        );
    } else {
        println!("WARNING: {unconverged} events did not converge within the run.");
    }
}
