//! Failure drill: crash the leader mid-run with dynamic election enabled,
//! crash and reboot a follower, and watch recovery repair the damage.
//!
//! ```text
//! cargo run --release --example failure_drill
//! ```

use fair_gossip::experiments::dissemination::DisseminationConfig;
use fair_gossip::experiments::net::{FabricNet, NetParams};
use fair_gossip::orderer::cutter::BatchConfig;
use fair_gossip::orderer::service::OrdererConfig;
use fair_gossip::sim::{Duration, NetworkConfig, NodeId, Simulation};
use fair_gossip::workload::schedule::{payload_schedule, PayloadWorkload};

fn main() {
    let peers = 40;
    let mut gossip = DisseminationConfig::fig07_09_enhanced_f4().gossip;
    gossip.election.dynamic = true;
    gossip.election.heartbeat_interval = Duration::from_secs(1);
    gossip.election.leader_timeout = Duration::from_secs(3);
    gossip.membership.alive_interval = Duration::from_secs(1);
    gossip.membership.alive_timeout = Duration::from_secs(4);

    let params = NetParams::new(
        peers,
        gossip,
        OrdererConfig::kafka(BatchConfig::paper_dissemination()),
    );
    let workload = PayloadWorkload {
        total_txs: 3_000,
        ..PayloadWorkload::default()
    };
    let schedule = payload_schedule(&workload);

    let mut network = NetworkConfig::lan(FabricNet::node_count(&params));
    network.loss = 0.01; // 1% packet loss on top, for good measure

    let net = FabricNet::new(params, schedule);
    let mut sim = Simulation::new(net, network, 7);
    sim.with_ctx(|net, ctx| net.start(ctx));

    // Let the dynamic election settle and some blocks flow.
    sim.run_until(fair_gossip::sim::Time::from_secs(20));
    let leader_before = sim.protocol().current_leader().expect("a leader stood up");
    println!(
        "t=20s   leader is {leader_before}, height(peer 5) = {}",
        sim.protocol().gossip(5).height()
    );

    // Crash the leader and a follower.
    sim.with_ctx(|_, ctx| {
        ctx.set_node_status_after(Duration::ZERO, NodeId(leader_before.0), false);
        ctx.set_node_status_after(Duration::ZERO, NodeId(17), false);
    });
    println!("t=20s   crashed the leader ({leader_before}) and peer17");

    sim.run_until(fair_gossip::sim::Time::from_secs(40));
    let leader_after = sim.protocol().current_leader().expect("someone took over");
    println!("t=40s   new leader is {leader_after}, blocks keep flowing");
    assert_ne!(leader_after, leader_before);

    // Reboot the follower; recovery must catch it up from its peers.
    sim.with_ctx(|_, ctx| ctx.set_node_status_after(Duration::ZERO, NodeId(17), true));
    println!("t=40s   rebooted peer17 (it lost nothing on disk, but missed 20 s of blocks)");

    sim.run_until(fair_gossip::sim::Time::from_secs(120));
    let net = sim.protocol();
    let reference = net.gossip(5).height();
    let rebooted = net.gossip(17).height();
    println!("t=120s  height(peer 5) = {reference}, height(peer17) = {rebooted}");
    assert!(
        reference > 20,
        "the network made progress through the failures"
    );
    assert!(
        reference - rebooted <= 1,
        "recovery must have caught the rebooted peer up (gap {})",
        reference - rebooted
    );
    println!("\nleader failover and crash recovery both worked ✓");
}
